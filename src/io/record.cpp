#include "io/record.hpp"

#include "io/json.hpp"

namespace harl {

bool TuningRecord::operator==(const TuningRecord& o) const {
  return version == o.version && network == o.network && task == o.task &&
         task_index == o.task_index && hardware_fp == o.hardware_fp &&
         policy == o.policy && seed == o.seed && sketch_id == o.sketch_id &&
         sketch_tag == o.sketch_tag && stages == o.stages &&
         time_ms == o.time_ms && trial_index == o.trial_index &&
         cached == o.cached && fail == o.fail && task_sig == o.task_sig &&
         hw_sim == o.hw_sim && experience_fp == o.experience_fp &&
         value_fp == o.value_fp;
}

std::vector<StageDecision> decisions_from_schedule(const Schedule& sched) {
  std::vector<StageDecision> out;
  out.reserve(sched.stages.size());
  for (const StageSchedule& ss : sched.stages) {
    StageDecision d;
    d.tiles.reserve(ss.tiles.size());
    for (const TileVector& t : ss.tiles) d.tiles.push_back(t.factors);
    d.compute_at = ss.compute_at;
    d.parallel_depth = ss.parallel_depth;
    d.unroll_index = ss.unroll_index;
    out.push_back(std::move(d));
  }
  return out;
}

std::string record_to_json(const TuningRecord& rec) {
  using json::Value;
  Value obj = Value::object();
  obj.set("v", Value::number(static_cast<std::int64_t>(rec.version)));
  obj.set("net", Value::string(rec.network));
  obj.set("task", Value::string(rec.task));
  obj.set("task_index", Value::number(static_cast<std::int64_t>(rec.task_index)));
  obj.set("hw", Value::number(rec.hardware_fp));
  obj.set("policy", Value::string(rec.policy));
  obj.set("seed", Value::number(rec.seed));
  obj.set("sketch", Value::number(static_cast<std::int64_t>(rec.sketch_id)));
  obj.set("tag", Value::string(rec.sketch_tag));
  Value stages = Value::array();
  for (const StageDecision& d : rec.stages) {
    Value s = Value::object();
    Value tiles = Value::array();
    for (const auto& tv : d.tiles) {
      Value axis = Value::array();
      for (std::int64_t f : tv) axis.push_back(Value::number(f));
      tiles.push_back(std::move(axis));
    }
    s.set("t", std::move(tiles));
    s.set("ca", Value::number(static_cast<std::int64_t>(d.compute_at)));
    s.set("par", Value::number(static_cast<std::int64_t>(d.parallel_depth)));
    s.set("unr", Value::number(static_cast<std::int64_t>(d.unroll_index)));
    stages.push_back(std::move(s));
  }
  obj.set("stages", std::move(stages));
  obj.set("ms", Value::number(rec.time_ms));
  obj.set("trial", Value::number(rec.trial_index));
  obj.set("cached", Value::boolean(rec.cached));
  // Optional failure provenance: omitted when the measurement succeeded, so
  // healthy logs stay byte-identical to those of builds without the field.
  if (!rec.fail.empty()) obj.set("fail", Value::string(rec.fail));
  // Optional transfer provenance: omitted when empty, so records without it
  // (and re-serialized old records) stay byte-identical to their source.
  if (!rec.task_sig.empty()) obj.set("sig", Value::string(rec.task_sig));
  if (!rec.hw_sim.empty()) {
    Value hwv = Value::array();
    for (double d : rec.hw_sim) hwv.push_back(Value::number(d));
    obj.set("hwv", std::move(hwv));
  }
  if (rec.experience_fp != 0) obj.set("xm", Value::number(rec.experience_fp));
  if (rec.value_fp != 0) obj.set("vm", Value::number(rec.value_fp));
  return obj.dump();
}

namespace {

bool require(const json::Value& obj, const char* key, const json::Value** out,
             std::string* error) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) {
    *error = std::string("missing required field \"") + key + "\"";
    return false;
  }
  *out = v;
  return true;
}

bool get_string(const json::Value& obj, const char* key, std::string* out,
                std::string* error) {
  const json::Value* v = nullptr;
  if (!require(obj, key, &v, error)) return false;
  if (!v->is_string()) {
    *error = std::string("field \"") + key + "\" is not a string";
    return false;
  }
  *out = v->as_string();
  return true;
}

bool get_number(const json::Value& obj, const char* key, const json::Value** out,
                std::string* error) {
  if (!require(obj, key, out, error)) return false;
  if (!(*out)->is_number()) {
    *error = std::string("field \"") + key + "\" is not a number";
    return false;
  }
  return true;
}

}  // namespace

bool record_from_json(const std::string& line, TuningRecord* rec,
                      std::string* error) {
  json::ParseError perr;
  json::Value obj = json::parse(line, &perr);
  if (!perr.ok) {
    *error = perr.to_string();
    return false;
  }
  if (!obj.is_object()) {
    *error = "record line is not a JSON object";
    return false;
  }

  const json::Value* v = nullptr;
  if (!get_number(obj, "v", &v, error)) return false;
  TuningRecord out;
  out.version = static_cast<int>(v->as_int64());
  if (out.version > kRecordSchemaVersion) {
    *error = "incompatible version " + std::to_string(out.version) +
             " (reader supports <= " + std::to_string(kRecordSchemaVersion) + ")";
    return false;
  }

  if (!get_string(obj, "net", &out.network, error)) return false;
  if (!get_string(obj, "task", &out.task, error)) return false;
  if (!get_string(obj, "policy", &out.policy, error)) return false;
  if (!get_string(obj, "tag", &out.sketch_tag, error)) return false;
  if (!get_number(obj, "task_index", &v, error)) return false;
  out.task_index = static_cast<int>(v->as_int64(-1));
  if (!get_number(obj, "hw", &v, error)) return false;
  out.hardware_fp = v->as_uint64();
  if (!get_number(obj, "seed", &v, error)) return false;
  out.seed = v->as_uint64();
  if (!get_number(obj, "sketch", &v, error)) return false;
  out.sketch_id = static_cast<int>(v->as_int64());
  if (!get_number(obj, "ms", &v, error)) return false;
  out.time_ms = v->as_double();
  if (!get_number(obj, "trial", &v, error)) return false;
  out.trial_index = v->as_int64();

  if (!require(obj, "cached", &v, error)) return false;
  if (!v->is_bool()) {
    *error = "field \"cached\" is not a boolean";
    return false;
  }
  out.cached = v->as_bool();

  // Optional fields (absent in records written before the features landed).
  if (const json::Value* fail = obj.find("fail"); fail != nullptr) {
    if (!fail->is_string()) {
      *error = "field \"fail\" is not a string";
      return false;
    }
    out.fail = fail->as_string();
  }
  if (const json::Value* sig = obj.find("sig"); sig != nullptr) {
    if (!sig->is_string()) {
      *error = "field \"sig\" is not a string";
      return false;
    }
    out.task_sig = sig->as_string();
  }
  if (const json::Value* hwv = obj.find("hwv"); hwv != nullptr) {
    if (!hwv->is_array()) {
      *error = "field \"hwv\" is not an array";
      return false;
    }
    out.hw_sim.reserve(hwv->items().size());
    for (const json::Value& d : hwv->items()) {
      if (!d.is_number()) {
        *error = "field \"hwv\" has a non-numeric entry";
        return false;
      }
      out.hw_sim.push_back(d.as_double());
    }
  }
  if (const json::Value* xm = obj.find("xm"); xm != nullptr) {
    if (!xm->is_number()) {
      *error = "field \"xm\" is not a number";
      return false;
    }
    out.experience_fp = xm->as_uint64();
  }
  if (const json::Value* vm = obj.find("vm"); vm != nullptr) {
    if (!vm->is_number()) {
      *error = "field \"vm\" is not a number";
      return false;
    }
    out.value_fp = vm->as_uint64();
  }

  if (!require(obj, "stages", &v, error)) return false;
  if (!v->is_array()) {
    *error = "field \"stages\" is not an array";
    return false;
  }
  out.stages.reserve(v->items().size());
  for (std::size_t s = 0; s < v->items().size(); ++s) {
    const json::Value& sv = v->items()[s];
    if (!sv.is_object()) {
      *error = "stage " + std::to_string(s) + " is not an object";
      return false;
    }
    StageDecision d;
    const json::Value* f = nullptr;
    if (!require(sv, "t", &f, error)) return false;
    if (!f->is_array()) {
      *error = "stage " + std::to_string(s) + " tiles are not an array";
      return false;
    }
    d.tiles.reserve(f->items().size());
    for (const json::Value& axis : f->items()) {
      if (!axis.is_array()) {
        *error = "stage " + std::to_string(s) + " tile vector is not an array";
        return false;
      }
      std::vector<std::int64_t> factors;
      factors.reserve(axis.items().size());
      for (const json::Value& fv : axis.items()) {
        if (!fv.is_number()) {
          *error = "stage " + std::to_string(s) + " tile factor is not a number";
          return false;
        }
        factors.push_back(fv.as_int64());
      }
      d.tiles.push_back(std::move(factors));
    }
    if (!get_number(sv, "ca", &f, error)) return false;
    d.compute_at = static_cast<int>(f->as_int64());
    if (!get_number(sv, "par", &f, error)) return false;
    d.parallel_depth = static_cast<int>(f->as_int64());
    if (!get_number(sv, "unr", &f, error)) return false;
    d.unroll_index = static_cast<int>(f->as_int64());
    out.stages.push_back(std::move(d));
  }

  *rec = std::move(out);
  return true;
}

Schedule schedule_from_record(const TuningRecord& rec,
                              const std::vector<Sketch>& sketches,
                              int num_unroll_options, std::string* error) {
  Schedule none;
  const Sketch* sketch = nullptr;
  for (const Sketch& sk : sketches) {
    if (sk.sketch_id == rec.sketch_id) {
      sketch = &sk;
      break;
    }
  }
  if (sketch == nullptr) {
    *error = "unknown sketch id " + std::to_string(rec.sketch_id) + " for task " +
             rec.task;
    return none;
  }
  if (!rec.sketch_tag.empty() && sketch->tag != rec.sketch_tag) {
    *error = "sketch tag mismatch: record \"" + rec.sketch_tag +
             "\" vs generated \"" + sketch->tag + "\"";
    return none;
  }
  Schedule sched;
  sched.sketch = sketch;
  sched.stages.resize(rec.stages.size());
  for (std::size_t s = 0; s < rec.stages.size(); ++s) {
    const StageDecision& d = rec.stages[s];
    StageSchedule& ss = sched.stages[s];
    ss.tiles.reserve(d.tiles.size());
    for (const auto& factors : d.tiles) {
      TileVector t;
      t.factors = factors;
      ss.tiles.push_back(std::move(t));
    }
    ss.compute_at = d.compute_at;
    ss.parallel_depth = d.parallel_depth;
    ss.unroll_index = d.unroll_index;
  }
  std::string invalid = validate_schedule(sched, num_unroll_options);
  if (!invalid.empty()) {
    *error = "reconstructed schedule invalid: " + invalid;
    return none;
  }
  return sched;
}

}  // namespace harl
