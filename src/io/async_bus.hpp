#pragma once

/// \file async_bus.hpp
/// Bounded-queue asynchronous callback dispatcher: wraps any set of
/// `TuningCallback`s so slow consumers (loggers, uploaders, experience
/// refreshers) run on a worker thread instead of stalling the tuning hot
/// loop.  Invariant: consumers see the exact event sequence a synchronous
/// bus would deliver (FIFO, registration order), minus a counted suffix/
/// window under the lossy overflow policies.  Collaborators: CallbackBus /
/// TaskScheduler (producer side), RecordLogger / ExperienceRefresher
/// (typical consumers).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "io/callbacks.hpp"

namespace harl {

/// What a producer does when the async queue is full.
enum class AsyncOverflow {
  /// Wait until the consumer frees a slot.  Lossless: every event is
  /// delivered exactly once, but a consumer slower than the hot loop
  /// eventually throttles tuning to its pace (the bound is the buffer).
  kBlock,
  /// Evict the oldest queued event to make room.  Never stalls the hot
  /// loop; lossy under sustained overload (evictions are counted in
  /// `dropped()`).  Suits monitoring consumers that only care about fresh
  /// state, not persistence.
  kDropOldest,
  /// Reject the new event.  Never stalls and never reorders what was
  /// already queued; rejections are counted in `rejected()` and warned
  /// about once.  Suits consumers that prefer a visible gap over stale
  /// delivery or hot-loop jitter.
  kFail,
};

const char* async_overflow_name(AsyncOverflow policy);

/// Queue shape and backpressure of one `AsyncCallbackBus`.
struct AsyncBusOptions {
  std::size_t capacity = 1024;  ///< max queued events (min 1)
  AsyncOverflow overflow = AsyncOverflow::kBlock;
};

/// Per-run toggle threaded through `SearchOptions::async_callbacks` /
/// `FleetTuner::Options`: when `enabled`, the scheduler routes every
/// registered callback through a bus it owns instead of invoking them
/// inline on the tuning thread.
struct AsyncCallbackOptions {
  bool enabled = false;
  std::size_t capacity = 1024;
  AsyncOverflow overflow = AsyncOverflow::kBlock;

  AsyncBusOptions bus_options() const { return {capacity, overflow}; }
};

/// Decouples event production (the tuning thread) from consumption (one
/// worker thread owned by the bus).  The bus is itself a `TuningCallback`,
/// so it drops into any place a synchronous callback goes — including a
/// scheduler-owned instance behind `SearchOptions::async_callbacks` — and
/// fans each event out to its registered consumers.
///
/// Delivery contract:
///   - events are delivered in the exact order they were produced (one
///     FIFO queue, one worker), and to consumers in registration order —
///     deterministic per-callback FIFO, same as the synchronous bus;
///   - event payloads (records, round stats) are copied at enqueue time, so
///     consumers never race the hot loop on them.  The `TaskScheduler&`
///     argument is forwarded by reference: async consumers must only read
///     run-constant scheduler state (network/task names, hardware, options,
///     fingerprints) — live tuning state (bests, curves) belongs to the
///     tuning thread while a run is in flight;
///   - a consumer that throws is isolated: the exception is caught and
///     counted (`consumer_errors()`), other consumers and later events are
///     unaffected, and the tuning thread never sees it;
///   - `flush()` blocks until every queued event is delivered; the
///     scheduler flushes at `run()` exit and the destructor drains, so a
///     clean shutdown loses nothing.  After a crash-style `_Exit` the
///     delivered prefix is intact (consumers like `RecordLogger` flush per
///     event batch), and the undelivered suffix is exactly what
///     deterministic resume re-executes.
///
/// Lifetime: consumers and the observed scheduler must outlive the last
/// `flush()`/destruction.  Producer-side calls (the `on_*` overrides) are
/// serialized by the tuning thread as usual; `add`/`remove`/`flush` are
/// thread-safe.  Never call `flush()` from inside a consumer (self-deadlock).
class AsyncCallbackBus : public TuningCallback {
 public:
  explicit AsyncCallbackBus(AsyncBusOptions opts = {});
  ~AsyncCallbackBus() override;

  AsyncCallbackBus(const AsyncCallbackBus&) = delete;
  AsyncCallbackBus& operator=(const AsyncCallbackBus&) = delete;

  /// Registers `cb` (not owned; ignored when nullptr or already present).
  /// Register consumers before the run starts for a complete stream: events
  /// produced while no consumer is registered are not queued at all, and
  /// events already queued at registration time are delivered to `cb` too.
  void add(TuningCallback* cb);
  /// Unregisters `cb`.  Queued events are no longer delivered to it; call
  /// `flush()` first when the tail matters.
  void remove(TuningCallback* cb);

  // Producer side: enqueue a copy of the event (see class comment).
  void on_records(const TaskScheduler& scheduler, int task,
                  const std::vector<MeasuredRecord>& records) override;
  void on_failure(const TaskScheduler& scheduler,
                  const FailureEvent& failure) override;
  void on_new_best(const TaskScheduler& scheduler, int task,
                   const MeasuredRecord& best) override;
  void on_round(const TaskScheduler& scheduler, const RoundEvent& round) override;
  void on_task_complete(const TaskScheduler& scheduler, int task) override;

  /// Blocks until the queue is empty and no event is mid-delivery, without
  /// touching the consumers — safe while a consumer is being torn down,
  /// which is why destructors use it instead of `flush()`.
  void drain();

  /// `drain()`, then forward `flush()` to every consumer (so a buffering
  /// consumer drains at run exit in async mode exactly as it would in
  /// sync mode).  Consumers must still be alive.
  void flush() override;

  // ---- accounting (monotone; readable from any thread) -----------------
  std::uint64_t enqueued() const;   ///< events accepted into the queue
  std::uint64_t delivered() const;  ///< events fanned out to consumers
  std::uint64_t dropped() const;    ///< evictions under kDropOldest
  std::uint64_t rejected() const;   ///< rejections under kFail
  /// Exceptions thrown by consumers (one per (event, consumer) pair).
  std::uint64_t consumer_errors() const;
  /// Queued events not yet delivered.
  std::size_t backlog() const;

  const AsyncBusOptions& options() const { return opts_; }

 private:
  /// One queued event: the kind discriminates which payload fields are live.
  struct Event {
    enum class Kind { kRecords, kFailure, kNewBest, kRound, kTaskComplete };
    Kind kind = Kind::kRound;
    const TaskScheduler* scheduler = nullptr;
    int task = -1;
    std::vector<MeasuredRecord> records;  ///< kRecords
    MeasuredRecord best;                  ///< kNewBest
    RoundEvent round;                     ///< kRound
    FailureEvent failure;                 ///< kFailure
  };

  bool has_consumers() const;
  void push(Event event);
  void worker_loop();
  void deliver(const Event& event);

  AsyncBusOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  ///< signals the worker: work or stop
  std::condition_variable space_cv_;  ///< signals producers/flushers: drained
  std::deque<Event> queue_;
  std::vector<TuningCallback*> consumers_;
  bool stop_ = false;
  bool delivering_ = false;  ///< worker is between pop and delivery end
  std::uint64_t enqueued_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t consumer_errors_ = 0;
  bool warned_overflow_ = false;
  std::thread worker_;  ///< last member: joins before the rest is torn down
};

}  // namespace harl
