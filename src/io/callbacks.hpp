#pragma once

/// \file callbacks.hpp
/// The tuning observer interface (TuningCallback) and the synchronous
/// fan-out CallbackBus.  Invariant: a fixed per-round event order
/// (on_records -> on_failure -> on_new_best -> on_round; on_task_complete
/// at budget end), and callbacks observe — they never influence the search.
/// Collaborators: TaskScheduler (producer), RecordLogger, AsyncCallbackBus.

#include <cstdint>
#include <vector>

#include "search/search_common.hpp"

namespace harl {

class TaskScheduler;

/// What one completed scheduler round did (the callback-facing mirror of
/// `TaskScheduler::RoundResult` plus the round's position in the log).
struct RoundEvent {
  std::size_t round_index = 0;       ///< index into TaskScheduler::round_log()
  int task = -1;                     ///< subgraph tuned this round
  std::int64_t trials_consumed = 0;  ///< simulator trials the round spent
  std::int64_t trials_after = 0;     ///< cumulative trials after the round
  std::size_t records = 0;           ///< measurements committed (incl. cached)
  double net_latency_ms = 0;         ///< objective after the round (+inf in warmup)
};

/// One failed measurement committed to a task (status != kOk): the
/// observer-facing face of the fault pipeline.  Fired after `on_records`
/// (the failed record is also *in* that batch, with `time_ms` unusable) so
/// monitors can alert without re-scanning every record.
struct FailureEvent {
  int task = -1;                     ///< subgraph the measurement belonged to
  std::int64_t trial_index = 0;      ///< trial accounting position
  std::uint64_t schedule_fp = 0;     ///< Schedule::fingerprint() of the victim
  MeasureStatus status = MeasureStatus::kOk;  ///< why it failed
  bool quarantined = false;          ///< schedule is now on the quarantine list
};

/// Observer interface for a tuning run — the extension point through which
/// persistence (`RecordLogger`), progress UIs, early-stop monitors, or
/// dataset harvesters watch a `TaskScheduler` without polling it.
///
/// Event order within one round: `on_records` (the round's committed
/// measurements), then `on_failure` for each failed record in commit order,
/// then `on_new_best` (only when the task's best improved), then
/// `on_round`.  `on_task_complete` fires once per task when a
/// `TaskScheduler::run` / `TuningSession::run` budget finishes (including
/// saturation early-exit), after the final round's events.
///
/// Callbacks run synchronously on the tuning thread by default; with
/// `SearchOptions::async_callbacks` (or a caller-owned `AsyncCallbackBus`,
/// io/async_bus.hpp) they run on a dispatcher thread instead, seeing the
/// same event sequence.  With `FleetTuner` a callback shared by several
/// workloads must be thread-safe, one registered per workload need not be.
class TuningCallback {
 public:
  virtual ~TuningCallback() = default;

  /// The records committed to `task` this round, in commit order.
  virtual void on_records(const TaskScheduler& scheduler, int task,
                          const std::vector<MeasuredRecord>& records) {
    (void)scheduler, (void)task, (void)records;
  }

  /// A measurement committed to a task ended in a failed state.
  virtual void on_failure(const TaskScheduler& scheduler,
                          const FailureEvent& failure) {
    (void)scheduler, (void)failure;
  }

  /// `task`'s best time improved; `best` is the improving record.
  virtual void on_new_best(const TaskScheduler& scheduler, int task,
                           const MeasuredRecord& best) {
    (void)scheduler, (void)task, (void)best;
  }

  /// A scheduler round finished and was appended to `round_log()`.
  virtual void on_round(const TaskScheduler& scheduler, const RoundEvent& round) {
    (void)scheduler, (void)round;
  }

  /// A `run()` budget finished; fired once per task index.
  virtual void on_task_complete(const TaskScheduler& scheduler, int task) {
    (void)scheduler, (void)task;
  }

  /// Deliver any buffered events before returning.  A no-op for ordinary
  /// (synchronous) callbacks; `AsyncCallbackBus` overrides it to drain its
  /// queue.  The scheduler flushes every registered callback when a `run()`
  /// budget completes, so by the time `run()` returns nothing is in flight.
  virtual void flush() {}
};

/// An ordered set of non-owned callbacks with fan-out dispatch.  The bus is
/// the only coupling between the scheduler and its observers: the scheduler
/// publishes, subscribers react, neither knows the other's type.
class CallbackBus {
 public:
  /// Registers `cb` (ignored when nullptr or already registered). Not owned;
  /// the caller keeps `cb` alive for the scheduler's lifetime.
  void add(TuningCallback* cb);
  void remove(TuningCallback* cb);
  void clear() { callbacks_.clear(); }
  std::size_t size() const { return callbacks_.size(); }
  bool empty() const { return callbacks_.empty(); }

  void emit_records(const TaskScheduler& scheduler, int task,
                    const std::vector<MeasuredRecord>& records) const;
  void emit_failure(const TaskScheduler& scheduler,
                    const FailureEvent& failure) const;
  void emit_new_best(const TaskScheduler& scheduler, int task,
                     const MeasuredRecord& best) const;
  void emit_round(const TaskScheduler& scheduler, const RoundEvent& round) const;
  void emit_task_complete(const TaskScheduler& scheduler, int task) const;
  /// `flush()` every registered callback (drains async dispatchers).
  void flush_all() const;

 private:
  std::vector<TuningCallback*> callbacks_;
};

}  // namespace harl
