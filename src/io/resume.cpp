#include "io/resume.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "core/tuning.hpp"
#include "util/logging.hpp"

namespace harl {

ResumeStats resume_session(TuningSession& session,
                           const std::vector<TuningRecord>& records) {
  ResumeStats stats;
  stats.records_loaded = records.size();

  const TaskScheduler& sched = session.scheduler();
  const std::string net = sched.network().name;
  const std::string policy = sched.options().effective_policy_name();
  const std::uint64_t seed = sched.options().seed;
  const std::uint64_t hw_fp = sched.hardware().fingerprint();

  std::vector<double> replay;
  for (const TuningRecord& r : records) {
    if (r.network != net || r.hardware_fp != hw_fp || r.policy != policy ||
        r.seed != seed) {
      ++stats.records_skipped;
      continue;
    }
    ++stats.records_matched;
    // Cache hits carry no simulator invocation of their own; the resumed run
    // re-derives them from the re-populated measure cache.
    if (r.cached || r.trial_index < 0) continue;
    std::size_t idx = static_cast<std::size_t>(r.trial_index);
    if (replay.size() <= idx) {
      replay.resize(idx + 1, std::numeric_limits<double>::quiet_NaN());
    }
    if (std::isnan(replay[idx])) ++stats.replay_trials;
    replay[idx] = r.time_ms;
  }
  if (!replay.empty()) {
    session.measurer().preload_replay(std::move(replay));
  }
  return stats;
}

ResumeStats resume_session(TuningSession& session, const std::string& log_path) {
  std::vector<RecordReadError> errors;
  std::vector<TuningRecord> records = read_records(log_path, &errors);
  ResumeStats stats = resume_session(session, records);
  stats.lines_skipped = errors.size();
  stats.errors = std::move(errors);
  return stats;
}

int apply_history_best(TuningSession& session,
                       const std::vector<TuningRecord>& records) {
  TaskScheduler& sched = session.scheduler();
  const std::uint64_t hw_fp = sched.hardware().fingerprint();
  const int num_unroll = sched.hardware().num_unroll_options();

  int applied = 0;
  for (int i = 0; i < sched.num_tasks(); ++i) {
    TaskState& task = sched.task(i);
    const std::string& name = task.graph().name();
    const TuningRecord* best = nullptr;
    for (const TuningRecord& r : records) {
      if (r.hardware_fp != hw_fp || r.task != name) continue;
      if (best == nullptr || r.time_ms < best->time_ms) best = &r;
    }
    if (best == nullptr || !(best->time_ms < task.best_time_ms())) continue;

    std::string error;
    Schedule sched_best =
        schedule_from_record(*best, task.sketches(), num_unroll, &error);
    if (sched_best.sketch == nullptr) {
      HARL_LOG_WARN("apply_history_best: dropping record for task %s: %s",
                    name.c_str(), error.c_str());
      continue;
    }
    // Commit as a cached measurement: updates best/curve/cost model without
    // consuming a trial.  This counts as a task round, so the warmed task
    // skips the scheduler's warmup pass — intended warm-start behavior.
    MeasuredRecord rec;
    rec.sched = std::move(sched_best);
    rec.time_ms = best->time_ms;
    rec.trial_index = best->trial_index;
    rec.cached = true;
    task.commit_measurements({rec});
    ++applied;
  }
  return applied;
}

int apply_history_best(TuningSession& session, const std::string& log_path) {
  return apply_history_best(session, read_records(log_path));
}

}  // namespace harl
