#include "io/resume.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "core/tuning.hpp"
#include "exp/transfer.hpp"
#include "util/logging.hpp"

namespace harl {

ResumeStats resume_session(TuningSession& session,
                           const std::vector<TuningRecord>& records) {
  ResumeStats stats;
  stats.records_loaded = records.size();

  const TaskScheduler& sched = session.scheduler();
  const std::string net = sched.network().name;
  const std::string policy = sched.options().effective_policy_name();
  const std::uint64_t seed = sched.options().seed;
  const std::uint64_t hw_fp = sched.hardware().fingerprint();
  const std::uint64_t exp_fp = sched.experience_fingerprint();
  const std::uint64_t vm_fp = sched.value_fingerprint();

  std::vector<double> replay;
  for (const TuningRecord& r : records) {
    // The experience and value-model fingerprints are part of the identity:
    // a pretrained prior (or a value-guided beam) changes which schedules
    // the search proposes, so a cold log replayed into a warm/guided session
    // (or vice versa, or across different models) would attach logged times
    // to the wrong schedules.
    if (r.network != net || r.hardware_fp != hw_fp || r.policy != policy ||
        r.seed != seed || r.experience_fp != exp_fp || r.value_fp != vm_fp) {
      ++stats.records_skipped;
      continue;
    }
    ++stats.records_matched;
    // Cache hits carry no simulator invocation of their own; the resumed run
    // re-derives them from the re-populated measure cache.  Failed records
    // carry no usable time either: the resumed run re-executes their trials
    // against the (same-seeded) fault injector and fails identically, which
    // is what keeps a faulty crash-resume bit-identical.
    if (r.cached || r.trial_index < 0 || !r.fail.empty()) continue;
    std::size_t idx = static_cast<std::size_t>(r.trial_index);
    if (replay.size() <= idx) {
      replay.resize(idx + 1, std::numeric_limits<double>::quiet_NaN());
    }
    if (std::isnan(replay[idx])) ++stats.replay_trials;
    replay[idx] = r.time_ms;
  }
  if (!replay.empty()) {
    session.measurer().preload_replay(std::move(replay));
  }
  return stats;
}

ResumeStats resume_session(TuningSession& session, const std::string& log_path) {
  std::vector<RecordReadError> errors;
  std::vector<TuningRecord> records = read_records(log_path, &errors);
  ResumeStats stats = resume_session(session, records);
  stats.lines_skipped = errors.size();
  stats.errors = std::move(errors);
  return stats;
}

int apply_history_best(TuningSession& session,
                       const std::vector<TuningRecord>& records) {
  return transfer_history_best(session, records).applied;
}

int apply_history_best(TuningSession& session, const std::string& log_path) {
  return apply_history_best(session, read_records(log_path));
}

VerifyResumeReport verify_resume(const TuningSession& session,
                                 const std::vector<TuningRecord>& records,
                                 std::size_t max_checks) {
  VerifyResumeReport report;
  const TaskScheduler& sched = session.scheduler();
  const std::string net = sched.network().name;
  const std::string policy = sched.options().effective_policy_name();
  const std::uint64_t seed = sched.options().seed;
  const std::uint64_t hw_fp = sched.hardware().fingerprint();
  const std::uint64_t exp_fp = sched.experience_fingerprint();
  const std::uint64_t vm_fp = sched.value_fingerprint();
  const int num_unroll = sched.hardware().num_unroll_options();

  // `matched` counts every record of this run's identity; `eligible` is the
  // checkable subset — real simulator measurements only, since a
  // cache-replayed record carries the time of an *earlier* trial's noise
  // draw and recomputing it at its snapshot index would flag a false
  // divergence.
  std::vector<const TuningRecord*> eligible;
  for (const TuningRecord& r : records) {
    if (r.network != net || r.hardware_fp != hw_fp || r.policy != policy ||
        r.seed != seed || r.experience_fp != exp_fp || r.value_fp != vm_fp) {
      continue;
    }
    ++report.matched;
    if (r.cached || r.trial_index < 0 || !r.fail.empty()) continue;
    eligible.push_back(&r);
  }
  if (eligible.empty() || max_checks == 0) return report;

  // Deterministic sample: every stride-th record, spread over the whole log
  // so early and late rounds are both covered.
  std::size_t stride = (eligible.size() + max_checks - 1) / max_checks;
  for (std::size_t i = 0; i < eligible.size(); i += stride) {
    const TuningRecord& r = *eligible[i];
    ++report.checked;

    int task_index = -1;
    for (int t = 0; t < sched.num_tasks(); ++t) {
      if (sched.task(t).graph().name() == r.task) {
        task_index = t;
        break;
      }
    }
    std::string error;
    Schedule s;
    if (task_index < 0) {
      error = "no task named \"" + r.task + "\" in this session";
    } else {
      s = schedule_from_record(r, sched.task(task_index).sketches(), num_unroll,
                               &error);
    }
    if (s.sketch == nullptr) {
      report.mismatches.push_back(
          {r.trial_index, r.task, r.time_ms,
           std::numeric_limits<double>::quiet_NaN(), std::move(error)});
      continue;
    }
    double recomputed = session.measurer().remeasure(s, r.trial_index);
    if (recomputed != r.time_ms) {
      report.mismatches.push_back(
          {r.trial_index, r.task, r.time_ms, recomputed, ""});
    }
  }
  return report;
}

}  // namespace harl
