#pragma once

/// \file safe_file.hpp
/// Self-verifying file IO for the single-blob artifacts (GBDT models,
/// knowledge caches): a CRC-32 footer line that detects truncation and bit
/// rot, and an atomic tmp+rename writer with optional fsync for a durable
/// publish.  Record logs stay line-granular (torn-tail probe + salvage in
/// record_io) — a whole-file checksum would reject a log for one bad line.
/// Collaborators: gbdt_io (save/load_gbdt), knowledge_cache (save/load_cache).

#include <cstddef>
#include <cstdint>
#include <string>

namespace harl {

/// CRC-32 (IEEE 802.3, the zlib polynomial) of a byte range.
std::uint32_t crc32(const void* data, std::size_t size);

/// The footer marker: a final line `#harl-crc32 <8 hex digits>\n` whose
/// checksum covers every byte before it.
inline constexpr const char kChecksumFooterPrefix[] = "#harl-crc32 ";

/// Append the checksum footer line to `body` (which should end in '\n').
std::string with_checksum_footer(std::string body);

/// Verify and strip the checksum footer of `*text` in place.  Returns false
/// with a reason in `*error` when the footer is missing (truncated or
/// foreign file) or the checksum does not match (corrupt file).
bool strip_checksum_footer(std::string* text, std::string* error);

/// Write `text` to `path` atomically: tmp file in the same directory, then
/// rename over the target, so readers only ever see the old or the new
/// complete file.  With `fsync_publish` the data is fsync'd before the
/// rename and the parent directory after it, making the publish durable
/// across power loss at the cost of two syncs.
bool atomic_write_file(const std::string& path, const std::string& text,
                       bool fsync_publish, std::string* error);

/// Read the whole of `path` into `*text`.  Returns false with a
/// path-prefixed reason in `*error`.
bool read_text_file(const std::string& path, std::string* text,
                    std::string* error);

}  // namespace harl
