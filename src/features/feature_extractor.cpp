#include "features/feature_extractor.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace harl {

namespace {

double log2p1(double x) { return std::log2(1.0 + std::max(0.0, x)); }

/// Per-axis inner sizes of a stage at a given spatial/reduction level pair,
/// written into caller-provided scratch (no allocation).
void inner_sizes(const TensorOp& op, const StageSchedule& ss, int spatial_level,
                 int reduction_level, std::int64_t* sizes) {
  for (std::size_t a = 0; a < op.axes.size(); ++a) {
    const TileVector& t = ss.tiles[a];
    int lvl = op.axes[a].kind == AxisKind::kSpatial ? spatial_level : reduction_level;
    sizes[a] = t.inner_size(std::min(lvl, t.levels()));
  }
}

/// One slot's RL feature: log2(factor) normalized by the axis extent.
double slot_feature(const Schedule& sched, const TileSlot& slot) {
  const TileVector& t =
      sched.stage(slot.stage).tiles[static_cast<std::size_t>(slot.axis)];
  double extent = static_cast<double>(t.product());
  double f = static_cast<double>(t.factors[static_cast<std::size_t>(slot.level)]);
  return extent > 1 ? std::log2(f) / std::log2(extent) : 0.0;
}

double footprint_at(const TensorOp& op, const std::int64_t* inner) {
  double bytes = 0;
  for (const TensorAccess& in : op.inputs) {
    bytes += static_cast<double>(in.tile_bytes(inner));
  }
  double out = 1;
  for (std::size_t a = 0; a < op.axes.size(); ++a) {
    if (op.axes[a].kind == AxisKind::kSpatial) out *= static_cast<double>(inner[a]);
  }
  return bytes + out * op.out_elem_bytes;
}

}  // namespace

void FeatureExtractor::extract_into(const Schedule& sched, double* out) const {
  std::fill(out, out + kNumFeatures, 0.0);
  const Sketch& sk = *sched.sketch;
  const Subgraph& g = *sk.graph;
  const HardwareConfig& hw = *hw_;

  // --- Global program features (0..6) --------------------------------------
  double total_flops = 0;
  double total_bytes = 0;
  for (int s = 0; s < g.num_stages(); ++s) {
    total_flops += g.stage(s).op.total_flops();
    total_bytes += static_cast<double>(g.stage(s).op.input_bytes_once() +
                                       g.stage(s).op.output_bytes());
  }
  out[0] = log2p1(total_flops);
  out[1] = log2p1(total_bytes);
  out[2] = log2p1(total_flops / std::max(1.0, total_bytes));
  out[3] = static_cast<double>(g.num_stages());
  int anchor = g.anchor_stage();
  const StagePlan& aplan = sk.plan(anchor);
  out[4] = aplan.cache_write ? 1.0 : 0.0;
  out[5] = aplan.rfactor ? 1.0 : 0.0;
  bool has_fused = false;
  for (const StagePlan& p : sk.plans) {
    has_fused = has_fused || p.structure == StageStructure::kFusedConsumer;
  }
  out[6] = has_fused ? 1.0 : 0.0;

  // --- Anchor stage knobs (7..15) -------------------------------------------
  const TensorOp& op = g.stage(anchor).op;
  const StageSchedule& ss = sched.stage(anchor);
  if (ss.tiles.empty()) return;  // fully structural stage; globals only

  double parallel_iters = 1;
  int seen_spatial = 0;
  for (std::size_t a = 0; a < op.axes.size(); ++a) {
    if (op.axes[a].kind != AxisKind::kSpatial) continue;
    if (seen_spatial++ >= ss.parallel_depth) break;
    if (!ss.tiles[a].factors.empty()) {
      parallel_iters *= static_cast<double>(ss.tiles[a].factors[0]);
    }
  }
  out[7] = log2p1(parallel_iters);
  out[8] = std::min(8.0, parallel_iters / hw.num_cores);
  double chunks = std::ceil(parallel_iters / hw.num_cores);
  out[9] = parallel_iters / std::max(1.0, chunks * std::min<double>(parallel_iters,
                                                                    hw.num_cores));
  int last_spatial = -1;
  for (std::size_t a = 0; a < op.axes.size(); ++a) {
    if (op.axes[a].kind == AxisKind::kSpatial) last_spatial = static_cast<int>(a);
  }
  double innermost = last_spatial >= 0 && !ss.tiles[static_cast<std::size_t>(last_spatial)]
                                               .factors.empty()
                         ? static_cast<double>(
                               ss.tiles[static_cast<std::size_t>(last_spatial)].factors.back())
                         : 1.0;
  out[10] = log2p1(innermost);
  double lanes = hw.vector_lanes;
  out[11] = innermost / (std::ceil(innermost / lanes) * lanes);
  double unroll = static_cast<double>(
      hw.unroll_depths[static_cast<std::size_t>(ss.unroll_index)]);
  out[12] = log2p1(unroll);
  out[13] = hw.num_unroll_options() > 1
                ? static_cast<double>(ss.unroll_index) / (hw.num_unroll_options() - 1)
                : 0.0;
  int ca_stage = sk.primary_compute_at_stage;
  out[14] = ca_stage >= 0 ? static_cast<double>(sched.stage(ca_stage).compute_at) /
                                (kComputeAtCandidates - 1)
                          : 0.0;
  out[15] = static_cast<double>(ss.parallel_depth) /
            std::max(1, op.num_spatial_axes());

  // --- Per-level tile products (16..21) -------------------------------------
  for (int lvl = 0; lvl < kSpatialTileLevels; ++lvl) {
    double prod = 1;
    for (std::size_t a = 0; a < op.axes.size(); ++a) {
      if (op.axes[a].kind == AxisKind::kSpatial && lvl < ss.tiles[a].levels()) {
        prod *= static_cast<double>(ss.tiles[a].factors[static_cast<std::size_t>(lvl)]);
      }
    }
    out[16 + lvl] = log2p1(prod);
  }
  for (int lvl = 0; lvl < kReductionTileLevels; ++lvl) {
    double prod = 1;
    for (std::size_t a = 0; a < op.axes.size(); ++a) {
      if (op.axes[a].kind == AxisKind::kReduction && lvl < ss.tiles[a].levels()) {
        prod *= static_cast<double>(ss.tiles[a].factors[static_cast<std::size_t>(lvl)]);
      }
    }
    out[20 + lvl] = log2p1(prod);
  }

  // --- Working-set-to-cache ratios (22..30) ----------------------------------
  // Footprints at three representative blocking depths vs each cache level.
  HARL_CHECK(op.axes.size() <= static_cast<std::size_t>(kMaxAxes),
             "operator exceeds FeatureExtractor::kMaxAxes");
  std::int64_t scratch[kMaxAxes];
  inner_sizes(op, ss, kSpatialTileLevels - 1, kReductionTileLevels, scratch);
  double fp_inner = footprint_at(op, scratch);
  inner_sizes(op, ss, 2, 1, scratch);
  double fp_mid = footprint_at(op, scratch);
  inner_sizes(op, ss, 1, 0, scratch);
  double fp_outer = footprint_at(op, scratch);
  int fi = 22;
  for (std::size_t c = 0; c + 1 < hw.levels.size() && fi < 31; ++c) {
    double cap = hw.levels[c].capacity_bytes;
    out[fi++] = std::min(8.0, fp_inner / cap);
    out[fi++] = std::min(8.0, fp_mid / cap);
    out[fi++] = std::min(8.0, fp_outer / cap);
  }

  // --- Per-axis innermost factors (31..36), up to 4 spatial + 2 reduction ---
  int si = 31;
  int ri = 35;
  for (std::size_t a = 0; a < op.axes.size(); ++a) {
    if (op.axes[a].kind == AxisKind::kSpatial && si < 35) {
      out[si++] = log2p1(static_cast<double>(ss.tiles[a].factors.back()));
    } else if (op.axes[a].kind == AxisKind::kReduction && ri < 37) {
      out[ri++] = log2p1(static_cast<double>(ss.tiles[a].factors.back()));
    }
  }

  // --- Outer trip counts and points (37..41) ---------------------------------
  double outer_trips = 1;
  for (std::size_t a = 0; a < op.axes.size(); ++a) {
    if (!ss.tiles[a].factors.empty()) {
      outer_trips *= static_cast<double>(ss.tiles[a].factors[0]);
    }
  }
  out[37] = log2p1(outer_trips);
  out[38] = log2p1(static_cast<double>(op.iter_space_points()));
  out[39] = log2p1(static_cast<double>(op.output_elems()));
  double red_points = 1;
  for (const Axis& ax : op.axes) {
    if (ax.kind == AxisKind::kReduction) red_points *= static_cast<double>(ax.extent);
  }
  out[40] = log2p1(red_points);
  out[41] = static_cast<double>(sk.sketch_id);

  // Remaining slots (42..47) reserved (zero) for forward compatibility.
}

std::vector<double> FeatureExtractor::extract(const Schedule& sched) const {
  std::vector<double> out(kNumFeatures, 0.0);
  extract_into(sched, out.data());
  return out;
}

void FeatureExtractor::extract_matrix_into(const std::vector<Schedule>& scheds,
                                           double* out, ThreadPool* pool) const {
  constexpr std::size_t kW = kNumFeatures;
  if (pool != nullptr && scheds.size() > 1) {
    pool->parallel_for(scheds.size(), [&](std::size_t i) {
      extract_into(scheds[i], out + i * kW);
    });
  } else {
    for (std::size_t i = 0; i < scheds.size(); ++i) {
      extract_into(scheds[i], out + i * kW);
    }
  }
}

void FeatureExtractor::extract_prefix_into(const Schedule& sched, int depth,
                                           double* out) const {
  const int stages = static_cast<int>(sched.stages.size());
  if (depth < 0) depth = 0;
  if (depth > stages) depth = stages;
  Schedule prefix = prefix_schedule(sched, depth);
  extract_into(prefix, out);
  out[kNumFeatures] =
      stages > 0 ? static_cast<double>(depth) / static_cast<double>(stages) : 1.0;
  out[kNumFeatures + 1] = static_cast<double>(stages - depth);
}

void FeatureExtractor::extract_prefix_matrix_into(
    const std::vector<Schedule>& scheds, int depth, double* out) const {
  constexpr std::size_t kW = kNumPrefixFeatures;
  for (std::size_t i = 0; i < scheds.size(); ++i) {
    extract_prefix_into(scheds[i], depth, out + i * kW);
  }
}

std::vector<double> slot_features(const Schedule& sched,
                                  const std::vector<TileSlot>& slots) {
  std::vector<double> out;
  out.reserve(slots.size());
  for (const TileSlot& slot : slots) out.push_back(slot_feature(sched, slot));
  return out;
}

void rl_observation_into(const FeatureExtractor& fx, const ActionSpace& space,
                         const Schedule& sched, std::vector<double>& out) {
  const std::vector<TileSlot>& slots = space.slots();
  out.resize(static_cast<std::size_t>(FeatureExtractor::kNumFeatures) +
             slots.size() + 3);
  fx.extract_into(sched, out.data());
  std::size_t p = FeatureExtractor::kNumFeatures;
  for (const TileSlot& slot : slots) out[p++] = slot_feature(sched, slot);
  const Sketch& sk = space.sketch();
  int ca_stage = sk.primary_compute_at_stage;
  out[p++] = ca_stage >= 0 ? static_cast<double>(sched.stage(ca_stage).compute_at) /
                                 (kComputeAtCandidates - 1)
                           : 0.0;
  int anchor = sk.graph->anchor_stage();
  const TensorOp& aop = sk.graph->stage(anchor).op;
  const StageSchedule& ass = sched.stage(anchor);
  out[p++] = static_cast<double>(ass.parallel_depth) /
             std::max(1, aop.num_spatial_axes());
  out[p++] = space.num_unroll_options() > 1
                 ? static_cast<double>(ass.unroll_index) /
                       (space.num_unroll_options() - 1)
                 : 0.0;
}

std::vector<double> rl_observation(const FeatureExtractor& fx, const ActionSpace& space,
                                   const Schedule& sched) {
  std::vector<double> obs;
  rl_observation_into(fx, space, sched, obs);
  return obs;
}

}  // namespace harl
