#pragma once

/// \file feature_extractor.hpp
/// Schedule featurization: fixed-width numeric features (tiling shape,
/// locality ratios, parallelism, hardware-relative terms) extracted
/// allocation-free, one row or one flat matrix at a time.  Invariant:
/// extraction is deterministic and row layout is stable (kNumFeatures).
/// Collaborators: XgbCostModel, ExperienceStore, RL observations.

#include <vector>

#include "hwsim/hardware_config.hpp"
#include "sched/actions.hpp"
#include "sched/schedule.hpp"

namespace harl {

class ThreadPool;

/// Ansor-style schedule featurization for the learned cost model and the RL
/// agent's observation.
///
/// Produces a fixed-width vector of structural program properties: work and
/// traffic magnitudes, arithmetic intensity, per-level tile products,
/// innermost/vectorizable extents, parallelism and load balance, unroll
/// depth, compute-at position, and working-set-to-cache-capacity ratios.
/// Deliberately *not* the simulator's full traffic model: the cost model has
/// to learn the landscape from measurements (as XGBoost does in the paper),
/// not read it off a feature.
///
/// `extract_into` performs no heap allocation (fixed stack scratch), so the
/// batched `extract_matrix_into` can fan schedules out across a pool with
/// every worker writing straight into its row of one flat matrix.
class FeatureExtractor {
 public:
  static constexpr int kNumFeatures = 48;
  /// Width of a *prefix* feature row: the ordinary features of the
  /// suffix-neutralized schedule plus two prefix descriptors (decided-depth
  /// fraction, undecided-stage count).  Deliberately distinct from
  /// kNumFeatures so a value-head model file can never be loaded as an
  /// experience cost model (or vice versa) — `Gbdt::num_features()` catches
  /// the mismatch at load time.
  static constexpr int kNumPrefixFeatures = kNumFeatures + 2;
  /// Upper bound on iteration axes per operator supported by the
  /// allocation-free scratch (largest real workload, conv3d, has 11).
  static constexpr int kMaxAxes = 16;

  explicit FeatureExtractor(const HardwareConfig* hw) : hw_(hw) {}

  /// Feature vector of fixed length kNumFeatures.
  std::vector<double> extract(const Schedule& sched) const;
  void extract_into(const Schedule& sched, double* out) const;

  /// Fill `out` (row-major, scheds.size() x kNumFeatures) with one feature
  /// row per schedule.  With a pool, rows are extracted in parallel; results
  /// are indexed by position, so the fill is deterministic either way.
  void extract_matrix_into(const std::vector<Schedule>& scheds, double* out,
                           ThreadPool* pool = nullptr) const;

  /// Feature row (length kNumPrefixFeatures) of the first `depth` decided
  /// stages of `sched`: the ordinary features of `prefix_schedule(sched,
  /// depth)` followed by [depth / num_stages, num_stages - depth].  Input is
  /// the *full* schedule; neutralization happens here.  Unlike
  /// `extract_into` this copies the schedule (value scoring is off the
  /// per-trial hot path).
  void extract_prefix_into(const Schedule& sched, int depth, double* out) const;

  /// Row-major scheds.size() x kNumPrefixFeatures prefix-feature matrix, all
  /// rows at the same `depth`.  Serial on purpose: prefix scoring batches are
  /// small (beam candidates) and a serial fill keeps the value-guided
  /// schedule stream trivially independent of pool size.
  void extract_prefix_matrix_into(const std::vector<Schedule>& scheds, int depth,
                                  double* out) const;

  const HardwareConfig& hardware() const { return *hw_; }

 private:
  const HardwareConfig* hw_;
};

/// Per-tile-slot features for the RL observation: log2(factor)/log2(extent)
/// of every (stage, axis, level) slot of the action space, in slot order.
/// Gives the policy network direct sight of the tiling state it mutates.
std::vector<double> slot_features(const Schedule& sched,
                                  const std::vector<TileSlot>& slots);

/// Full RL observation: FeatureExtractor output followed by slot features
/// and the normalized compute-at/parallel/unroll knob values.
/// Dimension: FeatureExtractor::kNumFeatures + slots.size() + 3.
std::vector<double> rl_observation(const FeatureExtractor& fx, const ActionSpace& space,
                                   const Schedule& sched);

/// In-place variant: resizes `out` to the observation dimension and fills it
/// without further allocation when the caller reuses the buffer across steps
/// (the HARL tune-round inner loop does).
void rl_observation_into(const FeatureExtractor& fx, const ActionSpace& space,
                         const Schedule& sched, std::vector<double>& out);

}  // namespace harl
