#include "exp/shard_refresh.hpp"

#include <utility>

namespace harl {

ExperienceRefresher* ShardRefreshHub::register_shard(const std::string& name,
                                                     const HardwareConfig& hw,
                                                     RefreshOptions opts,
                                                     TaskResolver resolver) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = shards_.find(name);
  if (it != shards_.end()) return it->second.get();
  auto refresher = std::make_unique<ExperienceRefresher>(hw, std::move(opts),
                                                         std::move(resolver));
  ExperienceRefresher* raw = refresher.get();
  shards_.emplace(name, std::move(refresher));
  return raw;
}

ExperienceRefresher* ShardRefreshHub::refresher(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = shards_.find(name);
  return it == shards_.end() ? nullptr : it->second.get();
}

std::size_t ShardRefreshHub::num_shards() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

std::size_t ShardRefreshHub::total_refreshes() const {
  std::size_t total = 0;
  for (ExperienceRefresher* r : snapshot()) total += r->refreshes();
  return total;
}

std::vector<ExperienceRefresher*> ShardRefreshHub::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ExperienceRefresher*> out;
  out.reserve(shards_.size());
  for (const auto& kv : shards_) out.push_back(kv.second.get());
  return out;
}

void ShardRefreshHub::on_records(const TaskScheduler& scheduler, int task,
                                 const std::vector<MeasuredRecord>& records) {
  // Every shard's refresher sees every record: ExperienceStore featurizes
  // against the refresher's own hardware at refit time, so a sibling shard's
  // measurements retrain this shard's model under this shard's hw — the
  // cross-shard warm-up path.
  for (ExperienceRefresher* r : snapshot()) {
    r->on_records(scheduler, task, records);
  }
}

void ShardRefreshHub::on_round(const TaskScheduler& scheduler,
                               const RoundEvent& round) {
  for (ExperienceRefresher* r : snapshot()) r->on_round(scheduler, round);
}

}  // namespace harl
