#include "exp/transfer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/tuning.hpp"
#include "sched/tiling.hpp"
#include "util/logging.hpp"

namespace harl {

std::vector<std::int64_t> adapt_tile_factors(
    const std::vector<std::int64_t>& source_factors, std::int64_t target_extent) {
  std::int64_t src_product = 1;
  for (std::int64_t f : source_factors) src_product *= std::max<std::int64_t>(1, f);
  if (src_product == target_extent) return source_factors;

  std::size_t levels = source_factors.size();
  std::vector<std::int64_t> out(levels, 1);
  if (levels == 0) return out;
  if (levels == 1 || src_product <= 1) {
    // No proportions to mimic: match trivial_tile (everything innermost).
    out.back() = target_extent;
    return out;
  }

  // Target per-level shares of log(extent), from the source's proportions.
  double src_log = std::log(static_cast<double>(src_product));
  std::vector<double> share(levels);
  for (std::size_t l = 0; l < levels; ++l) {
    share[l] = std::log(static_cast<double>(std::max<std::int64_t>(1, source_factors[l]))) /
               src_log;
  }

  // Greedy: place each prime (largest first, so big factors land where the
  // share deficit is largest) at the level furthest below its share.  Ties
  // go innermost, matching the bias of most good schedules.
  std::vector<std::int64_t> primes = factorize(target_extent);
  double tgt_log = std::log(static_cast<double>(std::max<std::int64_t>(2, target_extent)));
  std::vector<double> placed(levels, 0.0);
  for (std::size_t p = primes.size(); p-- > 0;) {
    double lp = std::log(static_cast<double>(primes[p]));
    std::size_t best = levels - 1;
    double best_deficit = -std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < levels; ++l) {
      double deficit = share[l] * tgt_log - placed[l];
      if (deficit > best_deficit || (deficit == best_deficit && l > best)) {
        best_deficit = deficit;
        best = l;
      }
    }
    out[best] *= primes[p];
    placed[best] += lp;
  }
  return out;
}

Schedule adapt_record_schedule(const TuningRecord& rec,
                               const std::vector<Sketch>& sketches,
                               int num_unroll_options, std::string* error) {
  Schedule none;
  const Sketch* sketch = nullptr;
  for (const Sketch& sk : sketches) {
    if (sk.sketch_id == rec.sketch_id) {
      sketch = &sk;
      break;
    }
  }
  // Fall back to the structural tag: sibling tasks usually generate the same
  // sketch family, but ids can shift when rule applicability differs.
  if (sketch == nullptr && !rec.sketch_tag.empty()) {
    for (const Sketch& sk : sketches) {
      if (sk.tag == rec.sketch_tag) {
        sketch = &sk;
        break;
      }
    }
  }
  if (sketch == nullptr) {
    *error = "no sketch with id " + std::to_string(rec.sketch_id) + " or tag \"" +
             rec.sketch_tag + "\"";
    return none;
  }
  const Subgraph& g = *sketch->graph;
  if (static_cast<int>(rec.stages.size()) != g.num_stages()) {
    *error = "stage count mismatch";
    return none;
  }

  Schedule sched;
  sched.sketch = sketch;
  sched.stages.resize(rec.stages.size());
  for (int s = 0; s < g.num_stages(); ++s) {
    const StageDecision& d = rec.stages[static_cast<std::size_t>(s)];
    const TensorOp& op = g.stage(s).op;
    StageSchedule& ss = sched.stages[static_cast<std::size_t>(s)];
    if (!d.tiles.empty()) {
      if (d.tiles.size() != op.axes.size()) {
        *error = "stage " + std::to_string(s) + ": axis count mismatch";
        return none;
      }
      ss.tiles.reserve(d.tiles.size());
      for (std::size_t a = 0; a < d.tiles.size(); ++a) {
        TileVector t;
        t.factors = adapt_tile_factors(d.tiles[a], op.axes[a].extent);
        ss.tiles.push_back(std::move(t));
      }
    }
    ss.compute_at = std::clamp(d.compute_at, 0, kComputeAtCandidates - 1);
    ss.parallel_depth = std::clamp(d.parallel_depth, 0, op.num_spatial_axes());
    ss.unroll_index = std::clamp(d.unroll_index, 0, num_unroll_options - 1);
  }
  std::string invalid = validate_schedule(sched, num_unroll_options);
  if (!invalid.empty()) {
    *error = "adapted schedule invalid: " + invalid;
    return none;
  }
  return sched;
}

std::vector<std::int64_t> record_anchor_extents(const TuningRecord& rec,
                                                int anchor_stage) {
  std::vector<std::int64_t> out;
  if (anchor_stage < 0 ||
      static_cast<std::size_t>(anchor_stage) >= rec.stages.size()) {
    return out;
  }
  for (const auto& factors : rec.stages[static_cast<std::size_t>(anchor_stage)].tiles) {
    std::int64_t p = 1;
    for (std::int64_t f : factors) p *= std::max<std::int64_t>(1, f);
    out.push_back(p);
  }
  return out;
}

double extent_similarity(const std::vector<std::int64_t>& a,
                         const std::vector<std::int64_t>& b) {
  if (a.empty() || a.size() != b.size()) return 0.0;
  double dist = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] <= 0 || b[i] <= 0) return 0.0;
    double r = std::log(static_cast<double>(a[i]) / static_cast<double>(b[i]));
    dist += r < 0 ? -r : r;
  }
  return std::exp(-dist / static_cast<double>(a.size()));
}

namespace {

struct Candidate {
  const TuningRecord* record = nullptr;
  std::size_t index = 0;   ///< position in the input (deterministic tie-break)
  bool exact = false;
  double score = 0;        ///< hw_sim * extent_sim (2.0 marker for exact)
  double est_time_ms = 0;
};

}  // namespace

TransferStats transfer_history_best(TuningSession& session,
                                    const std::vector<TuningRecord>& records,
                                    const TransferOptions& opts) {
  TransferStats stats;
  TaskScheduler& sched = session.scheduler();
  const HardwareConfig& hw = sched.hardware();
  const std::uint64_t hw_fp = hw.fingerprint();
  const int num_unroll = hw.num_unroll_options();
  const std::vector<double> hw_vec = hw.similarity_vector();
  const double hw_peak = HardwareConfig::peak_flops_of(hw_vec);

  for (int i = 0; i < sched.num_tasks(); ++i) {
    TaskState& task = sched.task(i);
    const Subgraph& graph = task.graph();
    const std::string& name = graph.name();
    const std::string sig = graph.structure_signature();
    const int anchor = graph.anchor_stage();
    const TensorOp& anchor_op = graph.stage(anchor).op;
    std::vector<std::int64_t> target_extents;
    target_extents.reserve(anchor_op.axes.size());
    for (const Axis& a : anchor_op.axes) target_extents.push_back(a.extent);
    const double target_points =
        static_cast<double>(anchor_op.iter_space_points());

    std::vector<Candidate> candidates;
    for (std::size_t r = 0; r < records.size(); ++r) {
      const TuningRecord& rec = records[r];
      if (!(rec.time_ms > 0) || !rec.fail.empty()) continue;
      bool exact = rec.task == name && rec.hardware_fp == hw_fp;
      if (exact) {
        candidates.push_back({&rec, r, true, 2.0, rec.time_ms});
        continue;
      }
      if (!opts.structural) continue;

      double hw_sim = 1.0;
      double speed_ratio = 1.0;  // source peak / target peak
      if (rec.hardware_fp != hw_fp) {
        hw_sim = HardwareConfig::similarity(rec.hw_sim, hw_vec);
        if (hw_sim <= 0) continue;  // no similarity vector: cannot cross hw
        double src_peak = HardwareConfig::peak_flops_of(rec.hw_sim);
        if (src_peak > 0 && hw_peak > 0) speed_ratio = src_peak / hw_peak;
      }
      // Structure gate: signatures must agree when the record carries one
      // (records from before the field rely on adaptation shape checks).
      if (!rec.task_sig.empty() && rec.task_sig != sig) continue;

      std::vector<std::int64_t> src_extents = record_anchor_extents(rec, anchor);
      double ext_sim = extent_similarity(src_extents, target_extents);
      if (ext_sim <= 0) continue;
      double score = hw_sim * ext_sim;
      if (score < opts.min_score) continue;

      double src_points = 1;
      for (std::int64_t e : src_extents) src_points *= static_cast<double>(e);
      double est = rec.time_ms * (target_points / src_points) * speed_ratio *
                   opts.time_penalty;
      candidates.push_back({&rec, r, false, score, est});
    }

    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.exact != b.exact) return a.exact;
                if (a.score != b.score) return a.score > b.score;
                if (a.est_time_ms != b.est_time_ms) {
                  return a.est_time_ms < b.est_time_ms;
                }
                return a.index < b.index;
              });

    for (const Candidate& c : candidates) {
      // The list is ranked by similarity, not estimated time, so a later
      // candidate can still improve where this one does not.
      if (!(c.est_time_ms < task.best_time_ms())) continue;
      std::string error;
      Schedule s = c.exact
                       ? schedule_from_record(*c.record, task.sketches(),
                                              num_unroll, &error)
                       : adapt_record_schedule(*c.record, task.sketches(),
                                               num_unroll, &error);
      if (s.sketch == nullptr) {
        ++stats.rejected;
        HARL_LOG_DEBUG("transfer: dropping candidate for task %s: %s",
                       name.c_str(), error.c_str());
        continue;
      }
      if (c.exact) {
        // A real measurement on this exact (task, hardware): commit it as a
        // cached measurement — best/curve/cost model update, no trial
        // consumed.  This counts as a task round, so the warmed task skips
        // the scheduler's warmup pass — intended warm-start behavior.
        MeasuredRecord mr;
        mr.sched = std::move(s);
        mr.time_ms = c.est_time_ms;
        mr.trial_index = c.record->trial_index;
        mr.cached = true;
        task.commit_measurements({mr});
        ++stats.exact;
      } else {
        // A scaled *estimate*: seed the search with it (best pool + cost
        // model) without claiming a best latency or blocking re-measurement
        // — an estimate committed as a measurement could stand as a phantom
        // best the simulator never produced.
        task.seed_estimate(s, c.est_time_ms);
        ++stats.transferred;
      }
      ++stats.applied;
      break;
    }
  }
  return stats;
}

}  // namespace harl
