#pragma once

/// \file shard_refresh.hpp
/// ShardRefreshHub: cross-shard experience warm-up — one `TuningCallback`
/// that fans every record batch from any shard's sessions into a per-
/// hardware-class `ExperienceRefresher` for *every* registered shard, so a
/// GEMM tuned on one machine class warms the structurally similar tasks of
/// its siblings (each refresher featurizes the shared records against its
/// own hardware at refit time).  Invariant: each refresher's model bytes
/// stay a deterministic function of the record set it observed, exactly as
/// a solo refresher's would — the hub only widens which sessions feed it.
/// Collaborators: ExperienceRefresher, FleetTuner (shared_refresher hook),
/// HarlServer.

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exp/refresh.hpp"
#include "io/callbacks.hpp"

namespace harl {

/// The fan-out hub.  Register one refresher per hardware-class shard, then
/// add the hub as a callback on every session of every shard (the server
/// pushes it into each workload's callback list); each `on_records` /
/// `on_round` event is forwarded to *all* registered refreshers.  A shard's
/// fleet picks up its own refresher's republished model via
/// `FleetTuner::Options::shared_refresher` — it must NOT also register that
/// refresher on its sessions, or the shard's records would fold twice.
///
/// Thread-safe: registration and fan-out are guarded by one mutex, and the
/// fan-out iterates a snapshot, so a refresher registered mid-run joins at
/// the next event boundary.
class ShardRefreshHub : public TuningCallback {
 public:
  /// Create (or return the existing) refresher for shard `name`, refitting
  /// against `hw` with `opts`.  The hub owns it; pointers stay valid for the
  /// hub's lifetime.
  ExperienceRefresher* register_shard(const std::string& name,
                                      const HardwareConfig& hw,
                                      RefreshOptions opts,
                                      TaskResolver resolver);

  /// Shard `name`'s refresher, or nullptr when unregistered.
  ExperienceRefresher* refresher(const std::string& name) const;

  std::size_t num_shards() const;

  /// Sum of `refreshes()` across every registered refresher (stats).
  std::size_t total_refreshes() const;

  // TuningCallback: fan every event to every shard's refresher.
  void on_records(const TaskScheduler& scheduler, int task,
                  const std::vector<MeasuredRecord>& records) override;
  void on_round(const TaskScheduler& scheduler,
                const RoundEvent& round) override;

 private:
  std::vector<ExperienceRefresher*> snapshot() const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<ExperienceRefresher>> shards_;
};

}  // namespace harl
