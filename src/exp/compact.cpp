#include "exp/compact.hpp"

#include <algorithm>
#include <map>
#include <tuple>

namespace harl {

namespace {

/// Run-identity key of a record (the `resume_session` match granularity —
/// including the experience-model fingerprint, so a cold run and a warm run
/// appended to the same log keep their own best-k and window).
using GroupKey = std::tuple<std::string, std::string, std::uint64_t, std::string,
                            std::uint64_t, std::uint64_t>;

GroupKey key_of(const TuningRecord& r) {
  return {r.network, r.task, r.hardware_fp, r.policy, r.seed, r.experience_fp};
}

}  // namespace

std::vector<TuningRecord> compact_records(const std::vector<TuningRecord>& records,
                                          const CompactOptions& opts,
                                          CompactStats* stats) {
  // Indices of each group's records in input order.  std::map keys give a
  // deterministic group iteration order, though the output order is input
  // order anyway.
  std::map<GroupKey, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < records.size(); ++i) {
    groups[key_of(records[i])].push_back(i);
  }

  std::vector<char> keep(records.size(), 0);
  std::size_t best_k = opts.best_k < 0 ? 0 : static_cast<std::size_t>(opts.best_k);
  std::size_t window = opts.window < 0 ? 0 : static_cast<std::size_t>(opts.window);
  for (const auto& [key, idx] : groups) {
    (void)key;
    // Best-k by measured time; ties keep the earlier record, so the record
    // `apply_history_best` would pick (first minimum) always survives.
    // Failed records log time_ms 0 and would otherwise outrank every real
    // measurement — they may only survive through the recency window.
    std::vector<std::size_t> by_time;
    by_time.reserve(idx.size());
    for (std::size_t i : idx) {
      if (records[i].fail.empty() && records[i].time_ms > 0) by_time.push_back(i);
    }
    std::stable_sort(by_time.begin(), by_time.end(), [&](std::size_t a, std::size_t b) {
      return records[a].time_ms < records[b].time_ms;
    });
    for (std::size_t k = 0; k < by_time.size() && k < best_k; ++k) {
      keep[by_time[k]] = 1;
    }
    // Most recent `window` in commit (input) order.
    std::size_t start = idx.size() > window ? idx.size() - window : 0;
    for (std::size_t k = start; k < idx.size(); ++k) keep[idx[k]] = 1;
  }

  std::vector<TuningRecord> out;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (keep[i]) out.push_back(records[i]);
  }
  if (stats != nullptr) {
    stats->records_in = records.size();
    stats->records_out = out.size();
    stats->groups = groups.size();
  }
  return out;
}

bool compact_log(const std::string& in_path, const std::string& out_path,
                 const CompactOptions& opts, CompactStats* stats) {
  RecordReader reader;
  if (!reader.open(in_path)) return false;
  std::vector<TuningRecord> records;
  TuningRecord rec;
  while (reader.next(&rec)) records.push_back(std::move(rec));
  std::size_t skipped = reader.errors().size();
  reader.close();

  std::vector<TuningRecord> kept = compact_records(records, opts, stats);
  if (stats != nullptr) stats->lines_skipped = skipped;

  RecordWriter writer;
  if (!writer.open(out_path, /*append=*/false)) return false;
  for (const TuningRecord& r : kept) {
    if (!writer.write(r)) return false;
  }
  writer.flush();
  writer.close();
  return true;
}

}  // namespace harl
