#pragma once

/// \file transfer.hpp
/// Scored cross-task / cross-hardware history transfer
/// (`transfer_history_best`): exact matches commit verbatim, structural
/// siblings are re-tiled to the new extents and *seed* the search with a
/// pessimistic estimate.  Invariant: only exact matches may claim a task
/// best; estimates never stand as measurements.
/// Collaborators: resume/apply_history_best, TaskState::seed_estimate.

#include <string>
#include <vector>

#include "io/record.hpp"
#include "sched/sketch.hpp"

namespace harl {

class TuningSession;

/// Knobs of the scored history matcher (`transfer_history_best`).
struct TransferOptions {
  /// Allow non-exact matches (structural/sibling-hardware transfer).  With
  /// this off the matcher reduces to the original exact
  /// (task name, hardware fingerprint) rule.
  bool structural = true;
  /// Structural candidates scoring below this are dropped.  The score is
  /// hardware similarity x extent similarity, both in (0, 1]; the default
  /// admits e.g. a 2x batch change on a half-size sibling CPU but rejects
  /// wildly different machines or shapes.
  double min_score = 0.05;
  /// Pessimism multiplier on the estimated time of a non-exact match
  /// (estimates seed the best pool and the improvement gate; overestimating
  /// keeps their ranking honest).
  double time_penalty = 1.25;
};

struct TransferStats {
  int applied = 0;       ///< tasks that received a warm-start schedule
  int exact = 0;         ///< ... via an exact (task, hardware) match
  int transferred = 0;   ///< ... via a scored structural match
  int rejected = 0;      ///< candidates dropped during adaptation/validation
};

/// Scored cross-task / cross-hardware history transfer — the open
/// replacement for exact `apply_history_best` matching.
///
/// For every task of the session, candidate records are scored:
///   - exact matches (same subgraph name AND same hardware fingerprint) rank
///     first and commit their logged time verbatim, preserving the original
///     behavior;
///   - structural matches require the same structure signature (per-stage op
///     kinds; records without one fall back to shape checks during
///     adaptation) and score `hw_sim * extent_sim`, where `hw_sim` compares
///     `HardwareConfig::similarity_vector()`s (1.0 for the same fingerprint;
///     records without a vector cannot cross hardware) and `extent_sim` is
///     exp(-mean |ln ratio|) over the anchor-stage extents.  Their tile
///     decisions are re-fit to the new extents (`adapt_tile_factors`) and
///     their time estimate is the logged time scaled by the anchor
///     iteration-space ratio and relative peak flops, times `time_penalty`.
///
/// The best-ranked candidate that survives schedule validation and improves
/// on the task's current best is applied (no trials consumed in either
/// case), but exact and structural matches are applied differently:
///   - an exact match's *real* logged time is committed as a cached
///     measurement (best/curve/cost model update, as before);
///   - a structural match's time is only an estimate, so it *seeds* the
///     search (`TaskState::seed_estimate`: best pool + cost model) without
///     claiming a task best or blocking re-measurement — a fabricated best
///     could stand as a phantom latency the simulator never produced.
/// Deterministic: ranking ties break on record order.
TransferStats transfer_history_best(TuningSession& session,
                                    const std::vector<TuningRecord>& records,
                                    const TransferOptions& opts = {});

/// Re-fit one logged tiling onto a new extent: keeps the level count and
/// approximates the source's per-level log-size proportions with the target
/// extent's prime factors (greedy largest-prime-first assignment, ties to
/// the innermost level).  The product of the result is exactly
/// `target_extent`.  When the source product already equals the target the
/// factors are copied verbatim.
std::vector<std::int64_t> adapt_tile_factors(
    const std::vector<std::int64_t>& source_factors, std::int64_t target_extent);

/// Anchor-stage extents a record carries implicitly: the per-axis tile
/// products of its `anchor_stage`-position stage (tile products equal extents
/// by the TileVector invariant).  Empty when the stage index is out of range.
std::vector<std::int64_t> record_anchor_extents(const TuningRecord& rec,
                                                int anchor_stage);

/// Extent similarity of two same-length extent lists in [0, 1]:
/// exp(-mean |ln(a_i / b_i)|), i.e. 1.0 for identical shapes, decaying with
/// the geometric distance per axis.  Mismatched lengths or non-positive
/// extents score 0 (structurally incomparable).
double extent_similarity(const std::vector<std::int64_t>& a,
                         const std::vector<std::int64_t>& b);

/// Rebuild a record's schedule against a *different* task's sketch set,
/// re-fitting every tile vector to the target extents and clamping the
/// scalar knobs into range.  Returns a schedule with `sketch == nullptr` and
/// fills `*error` when the structures are incompatible (stage/axis/level
/// mismatch) or validation fails.
Schedule adapt_record_schedule(const TuningRecord& rec,
                               const std::vector<Sketch>& sketches,
                               int num_unroll_options, std::string* error);

}  // namespace harl
