#pragma once

/// \file compact.hpp
/// Record-log compaction: per run identity keep the best-k records plus the
/// most recent window, in the same schema.  Invariant: output is a
/// subsequence of the input that readers, resume, transfer, and harvesting
/// accept transparently with identical best-schedule results.
/// Collaborators: TuningRecord, harl_harvest, ExperienceStore.

#include <cstddef>
#include <string>
#include <vector>

#include "io/record.hpp"
#include "io/record_io.hpp"

namespace harl {

/// What `compact_records` keeps of each run group (a group is one
/// (network, task, hardware fingerprint, policy, seed) identity — the
/// granularity `resume_session` matches on).
struct CompactOptions {
  /// The `best_k` fastest records of the group (ties keep the earlier
  /// record), so `apply_history_best` and best-schedule queries see exactly
  /// the results the full log would give.
  int best_k = 8;
  /// The most recent `window` records of the group in commit order — the
  /// tail a cost model would train on when warm-starting from the log.
  /// 0 keeps no window (best-k only).
  int window = 64;
};

struct CompactStats {
  std::size_t records_in = 0;
  std::size_t records_out = 0;
  std::size_t groups = 0;
  std::size_t lines_skipped = 0;  ///< malformed input lines (compact_log only)
};

/// Drop every record that is neither among its group's `best_k` fastest nor
/// in its group's most recent `window`.  Surviving records keep their
/// original relative order and exact contents (schema unchanged, trial
/// indices preserved), so `RecordReader`, `resume_session` (the replay table
/// tolerates gaps — dropped trials are simply re-simulated), transfer
/// matching, and the experience harvester all accept a compacted log
/// transparently, and the per-task best schedule is identical to the
/// uncompacted log's.
std::vector<TuningRecord> compact_records(const std::vector<TuningRecord>& records,
                                          const CompactOptions& opts = {},
                                          CompactStats* stats = nullptr);

/// File-to-file convenience: read `in_path` tolerantly (skipping malformed
/// lines), compact, and write `out_path` (truncating).  Returns false when
/// either file cannot be opened; `stats` (optional) reports the reduction.
bool compact_log(const std::string& in_path, const std::string& out_path,
                 const CompactOptions& opts = {}, CompactStats* stats = nullptr);

}  // namespace harl
