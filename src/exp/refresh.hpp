#pragma once

/// \file refresh.hpp
/// Continuous in-run experience refresh: a `TuningCallback` that folds each
/// finished round into a shared `ExperienceStore`, periodically `fit_more`s
/// the pretrained GBDT, and atomically republishes the model file +
/// fingerprint — closing the loop from "harvest tonight, warm tomorrow" to
/// "warm within one run".  Invariant: the refreshed model bytes are a
/// deterministic function of the observed event sequence (canonical record
/// set + the boosting RNG stream the serialized words continue).
/// Collaborators: ExperienceStore, gbdt_io, AsyncCallbackBus, FleetTuner.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cost/gbdt.hpp"
#include "exp/experience.hpp"
#include "io/callbacks.hpp"

namespace harl {

/// Knobs of one `ExperienceRefresher`.
struct RefreshOptions {
  /// Refit + republish after this many observed rounds (across every
  /// session the refresher is registered on).  <= 0 disables periodic
  /// refreshes; `refresh_now()` still works.
  int period_rounds = 8;
  /// Skip the refit while the harvested dataset has fewer rows than this
  /// (too little signal to be worth a model swap).
  std::size_t min_rows = 8;
  /// Trees boosted per refresh (`Gbdt::fit_more` increment).  The first
  /// refresh of a cold refresher does a full `gbdt.num_trees` fit instead.
  int trees_per_refresh = 8;
  /// File the refreshed model is atomically republished to (write-temp +
  /// rename, so readers never see a torn file).  Empty = in-memory only.
  std::string publish_path;
  /// Also keep `publish_path + "." + fingerprint` per refresh, so a log
  /// segment stamped with an older `xm` can still be verified/resumed
  /// against the exact model that produced it after later republishes.
  bool snapshot_history = false;
  /// fsync each republished model (and its directory entry) before the
  /// rename lands, making the publish durable across power loss.  Off by
  /// default: mid-run refreshes are reproducible from the logs, so most
  /// callers prefer the publish latency.
  bool fsync_publish = false;
  /// Learner shape when starting cold (no base model).
  GbdtConfig gbdt;
};

/// The continuous-refresh half of the experience subsystem (the online
/// value-function loop of Steiner et al.): registered as a callback — one
/// instance may be shared across every session of a fleet — it accumulates
/// the fleet's measurements as they happen and keeps a warm cost model
/// current *during* the run instead of overnight.
///
/// Each refresh rebuilds the canonical dataset from all records folded so
/// far (order-independent, duplicates dropped — see `ExperienceStore`),
/// continues boosting the current model with `fit_more` (whose serialized
/// RNG words make the tree stream deterministic), computes the new
/// `gbdt_fingerprint`, and republishes the model file atomically.  Sessions
/// constructed *after* a republish (the next fleet workload, the next
/// `tune_network` invocation, a sibling process watching the file) start
/// from the refreshed model; their records stamp the new `xm` fingerprint,
/// so resume and `verify_resume` keep pre- and post-republish record
/// segments strictly apart.
///
/// A refresher does NOT hot-swap the model of sessions already running:
/// a session's `xm` is fixed at construction, which is what keeps its
/// schedule stream — and therefore crash-resume — deterministic.
///
/// Thread-safe (one internal mutex); a refresh blocks other fold calls for
/// its duration, so register the refresher behind an `AsyncCallbackBus`
/// (e.g. `SearchOptions::async_callbacks`) to keep refits off every tuning
/// hot loop.
class ExperienceRefresher : public TuningCallback {
 public:
  ExperienceRefresher(HardwareConfig hw, RefreshOptions opts,
                      TaskResolver resolver = make_builtin_resolver());

  /// Start refreshing from `base` (e.g. the fleet's pretrained model)
  /// instead of cold.  `fingerprint` 0 = compute it here.  Call before the
  /// first event; the base also becomes `current_model()` immediately.
  void set_base_model(std::shared_ptr<const Gbdt> base,
                      std::uint64_t fingerprint = 0);

  void on_records(const TaskScheduler& scheduler, int task,
                  const std::vector<MeasuredRecord>& records) override;
  void on_round(const TaskScheduler& scheduler, const RoundEvent& round) override;

  /// Force a refit + republish now (end-of-run publish, tests).  Returns
  /// false when the dataset is still below `min_rows` (nothing published).
  bool refresh_now();

  /// The latest refreshed model (nullptr before the first refresh of a
  /// cold refresher) and its fingerprint (0 likewise).  What a sibling
  /// session constructed now would start from.
  std::shared_ptr<const Gbdt> current_model() const;
  std::uint64_t current_fingerprint() const;

  /// One consistent (model, fingerprint) pair — use this when both are
  /// needed, so a republish between two getters cannot mismatch them.
  struct Published {
    std::shared_ptr<const Gbdt> model;
    std::uint64_t fingerprint = 0;
  };
  Published published() const;

  std::size_t refreshes() const;       ///< refits that produced a model
  std::size_t records_folded() const;  ///< records added to the store
  std::size_t last_rows() const;       ///< dataset rows at the last refit try
  std::size_t publish_errors() const;  ///< failed file publishes (warned)

 private:
  bool refresh_locked();

  const HardwareConfig hw_;  ///< featurization target of every refit
  const RefreshOptions opts_;
  const TaskResolver resolver_;

  mutable std::mutex mu_;
  ExperienceStore store_;
  std::shared_ptr<const Gbdt> current_;
  std::uint64_t current_fp_ = 0;
  int rounds_since_refresh_ = 0;
  std::size_t refreshes_ = 0;
  std::size_t records_folded_ = 0;
  std::size_t last_rows_ = 0;
  std::size_t publish_errors_ = 0;
};

}  // namespace harl
