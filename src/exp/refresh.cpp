#include "exp/refresh.hpp"

#include <cstdio>
#include <utility>

#include "cost/gbdt_io.hpp"
#include "features/feature_extractor.hpp"
#include "io/record_logger.hpp"
#include "search/task_scheduler.hpp"
#include "util/logging.hpp"

namespace harl {

namespace {

/// Write `model` to `path` atomically: `save_gbdt` publishes via a temp file
/// renamed over the target, so a concurrent reader (a sibling session
/// loading `SearchOptions::experience_model`) sees either the previous
/// complete model or the new complete model, never a torn file.  With
/// `fsync` the publish is also durable across power loss.
bool publish_atomic(const Gbdt& model, const std::string& path, bool fsync,
                    std::string* error) {
  return save_gbdt(model, path, error, fsync);
}

}  // namespace

ExperienceRefresher::ExperienceRefresher(HardwareConfig hw, RefreshOptions opts,
                                         TaskResolver resolver)
    : hw_(std::move(hw)), opts_(std::move(opts)), resolver_(std::move(resolver)) {}

void ExperienceRefresher::set_base_model(std::shared_ptr<const Gbdt> base,
                                         std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(base);
  current_fp_ = 0;
  if (current_ != nullptr && current_->trained()) {
    current_fp_ = fingerprint != 0 ? fingerprint : gbdt_fingerprint(*current_);
  }
}

void ExperienceRefresher::on_records(const TaskScheduler& scheduler, int task,
                                     const std::vector<MeasuredRecord>& records) {
  if (records.empty()) return;
  // Durable form first (reads only run-constant scheduler state, so this is
  // safe on an async dispatcher thread), then fold under the lock.
  std::vector<TuningRecord> batch;
  batch.reserve(records.size());
  for (const MeasuredRecord& rec : records) {
    batch.push_back(make_tuning_record(scheduler, task, rec));
  }
  std::lock_guard<std::mutex> lock(mu_);
  store_.add_records(batch);
  records_folded_ += batch.size();
}

void ExperienceRefresher::on_round(const TaskScheduler& scheduler,
                                   const RoundEvent& round) {
  (void)scheduler, (void)round;
  if (opts_.period_rounds <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (++rounds_since_refresh_ >= opts_.period_rounds) refresh_locked();
}

bool ExperienceRefresher::refresh_now() {
  std::lock_guard<std::mutex> lock(mu_);
  return refresh_locked();
}

bool ExperienceRefresher::refresh_locked() {
  rounds_since_refresh_ = 0;
  HarvestStats stats;
  ExperienceDataset ds = store_.build_dataset(hw_, resolver_, &stats);
  last_rows_ = ds.rows;
  // Gbdt::fit needs a handful of rows to split on; below the floor a swap
  // would trade a working prior for noise.
  if (ds.rows < opts_.min_rows || ds.rows < 4) return false;

  // Continue the current stream: copy (the published model stays immutable
  // for its readers), boost a few more trees on the refreshed dataset.  The
  // copied RNG words continue the exact boosting stream `fit`/`fit_more`
  // left off at, so the refresh sequence is deterministic end to end.
  Gbdt model = current_ != nullptr ? Gbdt(*current_) : Gbdt(opts_.gbdt);
  model.fit_more(ds.features, FeatureExtractor::kNumFeatures, ds.labels,
                 opts_.trees_per_refresh);
  if (!model.trained()) return false;
  std::uint64_t fp = gbdt_fingerprint(model);

  if (!opts_.publish_path.empty()) {
    auto publish = [&](const std::string& path) {
      std::string error;
      if (!publish_atomic(model, path, opts_.fsync_publish, &error)) {
        ++publish_errors_;
        HARL_LOG_WARN("experience refresh: publish failed: %s", error.c_str());
        return false;
      }
      return true;
    };
    publish(opts_.publish_path);
    if (opts_.snapshot_history) {
      publish(opts_.publish_path + "." + std::to_string(fp));
    }
  }

  current_ = std::make_shared<const Gbdt>(std::move(model));
  current_fp_ = fp;
  ++refreshes_;
  return true;
}

std::shared_ptr<const Gbdt> ExperienceRefresher::current_model() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::uint64_t ExperienceRefresher::current_fingerprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_fp_;
}

ExperienceRefresher::Published ExperienceRefresher::published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {current_, current_fp_};
}

std::size_t ExperienceRefresher::refreshes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return refreshes_;
}

std::size_t ExperienceRefresher::records_folded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_folded_;
}

std::size_t ExperienceRefresher::last_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_rows_;
}

std::size_t ExperienceRefresher::publish_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return publish_errors_;
}

}  // namespace harl
