#pragma once

/// \file experience.hpp
/// ExperienceStore: fold record logs into one offline training set and
/// pretrain a GBDT (the Steiner-style value-function prior).  Invariant: the
/// dataset — and the model bytes — is a pure function of the record *set*
/// (canonical order + dedup), independent of add order or file splits.
/// Collaborators: RecordReader, FeatureExtractor, Gbdt, TaskResolver.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "cost/gbdt.hpp"
#include "hwsim/hardware_config.hpp"
#include "io/record.hpp"
#include "io/record_io.hpp"

namespace harl {

class ThreadPool;

/// Maps a record's (network name, task name) provenance back to the subgraph
/// it was measured on, so the harvester can regenerate sketches and
/// reconstruct schedules.  Return nullptr for unknown tasks (they are
/// counted and skipped, not fatal).
using TaskResolver = std::function<const Subgraph*(const std::string& network,
                                                   const std::string& task)>;

/// Resolver for the shipped workload inventory: parses the
/// `make_network`-style name "<base>_b<batch>" (e.g. "bert_b1",
/// "resnet50_b4"), instantiates the network once per distinct name, and
/// looks the task up by subgraph name.  Custom networks need a custom
/// resolver (see `ExperienceStore::build_dataset`).
TaskResolver make_builtin_resolver();

/// Outcome of one harvest (`ExperienceStore::build_dataset`).
struct HarvestStats {
  std::size_t logs_read = 0;         ///< files opened by add_log
  std::size_t lines_skipped = 0;     ///< malformed/incompatible input lines
  std::size_t records = 0;           ///< records folded in (before dedup)
  std::size_t duplicates = 0;        ///< identical records dropped (overlapping logs)
  std::size_t unknown_tasks = 0;     ///< records the resolver could not place
  std::size_t invalid_schedules = 0; ///< records whose schedule failed to rebuild
  std::size_t groups = 0;            ///< distinct (network, task, hardware) groups
  std::size_t rows = 0;              ///< training rows produced
};

/// One flat offline training set: schedule features re-extracted under the
/// *target* hardware and normalized-throughput labels (group best / time,
/// the same label `XgbCostModel` trains on).
struct ExperienceDataset {
  std::vector<double> features;  ///< rows x num_features
  std::vector<double> labels;
  std::size_t rows = 0;
  /// Row width: FeatureExtractor::kNumFeatures for the experience set,
  /// kNumPrefixFeatures for the value set (`build_value_dataset`).
  int num_features = 0;
};

/// Folds many tuning logs into one reusable training set — the offline half
/// of the cost model (the Steiner et al. value-function direction): a fleet
/// that logs every measurement can pre-train a GBDT overnight and hand every
/// new `TuningSession` a warm model instead of a cold one.
///
/// Determinism contract: the harvested dataset (and therefore the trained
/// model bytes) is a pure function of the *set* of well-formed records added
/// — records are canonically ordered and exact duplicates dropped before
/// featurization, so the same logs added in any order, split across files,
/// or overlapping with their own compacted form produce bit-identical
/// models.
class ExperienceStore {
 public:
  /// Streams one JSONL log in tolerantly (missing file = 0 records, not an
  /// error, matching `read_records`).  Returns the records added.  The
  /// overload surfaces the skipped lines (position + reason) so CLI callers
  /// can report them instead of silently counting.
  std::size_t add_log(const std::string& path);
  std::size_t add_log(const std::string& path,
                      std::vector<RecordReadError>* errors);

  void add_records(const std::vector<TuningRecord>& records);

  std::size_t size() const { return records_.size(); }
  const std::vector<TuningRecord>& records() const { return records_; }

  /// Build the offline training set for `hw`.  Schedules are reconstructed
  /// against the resolver's subgraphs (records that fail to resolve or
  /// validate are counted and skipped), features extracted in bulk with
  /// `extract_matrix_into` (optionally on `pool`; the fill is deterministic
  /// either way), and labels normalized per (network, task, hardware
  /// fingerprint) group.
  ExperienceDataset build_dataset(const HardwareConfig& hw,
                                  const TaskResolver& resolver,
                                  HarvestStats* stats = nullptr,
                                  ThreadPool* pool = nullptr) const;

  /// Convenience: `build_dataset` + a full `Gbdt::fit`.  The returned model
  /// is untrained when the harvest produced fewer than 4 rows.
  Gbdt pretrain(const HardwareConfig& hw, const GbdtConfig& cfg,
                const TaskResolver& resolver, HarvestStats* stats = nullptr,
                ThreadPool* pool = nullptr) const;

  /// Build the *value-function* training set: for every record and every
  /// prefix depth d in [1, num_stages], one row per distinct decided prefix
  /// (`prefix_fingerprint`) labeled with the best normalized score (group
  /// best / time) any record sharing that prefix finally reached — i.e. "the
  /// best final time reachable from this partial schedule", Steiner et al.'s
  /// value target.  Rows are kNumPrefixFeatures wide and inherit
  /// `build_dataset`'s determinism contract: canonical record order + prefix
  /// dedup make the set (and the trained model bytes) a pure function of the
  /// record set.
  ExperienceDataset build_value_dataset(const HardwareConfig& hw,
                                        const TaskResolver& resolver,
                                        HarvestStats* stats = nullptr) const;

  /// `build_value_dataset` + a full `Gbdt::fit` over prefix features.  The
  /// returned model is untrained below 4 rows; its `num_features()` is
  /// kNumPrefixFeatures, so it can never be confused with an experience
  /// model at load time.
  Gbdt pretrain_value(const HardwareConfig& hw, const GbdtConfig& cfg,
                      const TaskResolver& resolver,
                      HarvestStats* stats = nullptr) const;

 private:
  std::vector<TuningRecord> records_;
  std::size_t logs_read_ = 0;
  std::size_t lines_skipped_ = 0;
};

}  // namespace harl
