#include "exp/experience.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "features/feature_extractor.hpp"
#include "sched/sketch.hpp"
#include "util/logging.hpp"
#include "workloads/networks.hpp"

namespace harl {

TaskResolver make_builtin_resolver() {
  struct Cache {
    std::unordered_map<std::string, std::unique_ptr<Network>> networks;
  };
  auto cache = std::make_shared<Cache>();
  return [cache](const std::string& network,
                 const std::string& task) -> const Subgraph* {
    auto it = cache->networks.find(network);
    if (it == cache->networks.end()) {
      // "<base>_b<batch>" is the shipped naming scheme (make_bert(2) names
      // itself "bert_b2"); anything else is an unknown custom network.
      std::unique_ptr<Network> net;
      std::size_t pos = network.rfind("_b");
      if (pos != std::string::npos && pos + 2 < network.size()) {
        std::string base = network.substr(0, pos);
        const std::string digits = network.substr(pos + 2);
        bool numeric = !digits.empty() &&
                       digits.find_first_not_of("0123456789") == std::string::npos;
        if (numeric) {
          const auto& names = network_names();
          if (std::find(names.begin(), names.end(), base) != names.end()) {
            net = std::make_unique<Network>(
                make_network(base, std::atoll(digits.c_str())));
          }
        }
      }
      it = cache->networks.emplace(network, std::move(net)).first;
    }
    if (it->second == nullptr) return nullptr;
    for (const Subgraph& g : it->second->subgraphs) {
      if (g.name() == task) return &g;
    }
    return nullptr;
  };
}

std::size_t ExperienceStore::add_log(const std::string& path) {
  return add_log(path, nullptr);
}

std::size_t ExperienceStore::add_log(const std::string& path,
                                     std::vector<RecordReadError>* errors) {
  std::vector<RecordReadError> local;
  std::vector<TuningRecord> records = read_records(path, &local);
  ++logs_read_;
  lines_skipped_ += local.size();
  if (errors != nullptr) *errors = std::move(local);
  std::size_t added = records.size();
  for (TuningRecord& r : records) records_.push_back(std::move(r));
  return added;
}

void ExperienceStore::add_records(const std::vector<TuningRecord>& records) {
  records_.insert(records_.end(), records.begin(), records.end());
}

ExperienceDataset ExperienceStore::build_dataset(const HardwareConfig& hw,
                                                 const TaskResolver& resolver,
                                                 HarvestStats* stats,
                                                 ThreadPool* pool) const {
  HarvestStats local;
  local.logs_read = logs_read_;
  local.lines_skipped = lines_skipped_;
  local.records = records_.size();

  // Canonical order: every record's serialized form is a total order over
  // its full contents, so sorting by it (and dropping adjacent duplicates)
  // makes the dataset independent of the order logs were added in and
  // idempotent under overlapping inputs (a log plus its own compaction).
  std::vector<std::size_t> order(records_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<std::string> serialized(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    serialized[i] = record_to_json(records_[i]);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return serialized[a] < serialized[b];
  });
  order.erase(std::unique(order.begin(), order.end(),
                          [&](std::size_t a, std::size_t b) {
                            return serialized[a] == serialized[b];
                          }),
              order.end());
  local.duplicates = records_.size() - order.size();

  // Group rows by (network, task, hardware fingerprint): labels are
  // normalized against the best time *within* the group, like the online
  // cost model normalizes against the task best.
  using GroupKey = std::tuple<std::string, std::string, std::uint64_t>;
  std::map<GroupKey, std::vector<std::size_t>> groups;
  for (std::size_t i : order) {
    const TuningRecord& r = records_[i];
    // Failed and timeless records teach nothing; keep faults out of training.
    if (!(r.time_ms > 0) || !r.fail.empty()) continue;
    groups[{r.network, r.task, r.hardware_fp}].push_back(i);
  }

  // Reconstruct schedules group by group.  Sketch sets are generated once
  // per distinct task and kept alive until features are extracted (schedules
  // point into them).
  std::vector<std::unique_ptr<std::vector<Sketch>>> sketch_sets;
  std::map<std::pair<std::string, std::string>, const std::vector<Sketch>*>
      sketches_by_task;
  const int num_unroll = hw.num_unroll_options();
  std::vector<Schedule> scheds;
  ExperienceDataset out;

  for (const auto& [key, idx] : groups) {
    const auto& [net_name, task_name, hw_fp] = key;
    (void)hw_fp;
    const std::vector<Sketch>** slot = &sketches_by_task[{net_name, task_name}];
    if (*slot == nullptr) {
      const Subgraph* graph = resolver ? resolver(net_name, task_name) : nullptr;
      if (graph == nullptr) {
        local.unknown_tasks += idx.size();
        sketches_by_task.erase({net_name, task_name});
        continue;
      }
      sketch_sets.push_back(
          std::make_unique<std::vector<Sketch>>(generate_sketches(*graph)));
      *slot = sketch_sets.back().get();
    }
    const std::vector<Sketch>& sketches = **slot;

    std::size_t group_start = scheds.size();
    double best = 0;
    for (std::size_t i : idx) {
      const TuningRecord& r = records_[i];
      std::string error;
      Schedule s = schedule_from_record(r, sketches, num_unroll, &error);
      if (s.sketch == nullptr) {
        ++local.invalid_schedules;
        continue;
      }
      scheds.push_back(std::move(s));
      out.labels.push_back(r.time_ms);  // raw time for now; normalized below
      best = best == 0 ? r.time_ms : std::min(best, r.time_ms);
    }
    if (scheds.size() == group_start) continue;
    ++local.groups;
    for (std::size_t k = group_start; k < scheds.size(); ++k) {
      out.labels[k] = best / out.labels[k];
    }
  }

  out.rows = scheds.size();
  local.rows = out.rows;
  out.num_features = FeatureExtractor::kNumFeatures;
  out.features.resize(out.rows * FeatureExtractor::kNumFeatures);
  if (out.rows > 0) {
    FeatureExtractor fx(&hw);
    fx.extract_matrix_into(scheds, out.features.data(), pool);
  }
  if (stats != nullptr) *stats = local;
  return out;
}

ExperienceDataset ExperienceStore::build_value_dataset(
    const HardwareConfig& hw, const TaskResolver& resolver,
    HarvestStats* stats) const {
  HarvestStats local;
  local.logs_read = logs_read_;
  local.lines_skipped = lines_skipped_;
  local.records = records_.size();

  // Same canonical order + dedup as build_dataset: the value set must be a
  // pure function of the record set too.
  std::vector<std::size_t> order(records_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<std::string> serialized(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    serialized[i] = record_to_json(records_[i]);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return serialized[a] < serialized[b];
  });
  order.erase(std::unique(order.begin(), order.end(),
                          [&](std::size_t a, std::size_t b) {
                            return serialized[a] == serialized[b];
                          }),
              order.end());
  local.duplicates = records_.size() - order.size();

  using GroupKey = std::tuple<std::string, std::string, std::uint64_t>;
  std::map<GroupKey, std::vector<std::size_t>> groups;
  for (std::size_t i : order) {
    const TuningRecord& r = records_[i];
    if (!(r.time_ms > 0) || !r.fail.empty()) continue;
    groups[{r.network, r.task, r.hardware_fp}].push_back(i);
  }

  std::vector<std::unique_ptr<std::vector<Sketch>>> sketch_sets;
  std::map<std::pair<std::string, std::string>, const std::vector<Sketch>*>
      sketches_by_task;
  const int num_unroll = hw.num_unroll_options();

  // One value row per distinct decided prefix: the schedule it was first
  // seen with, the depth, and the best final (normalized) score reached by
  // any completion sharing the prefix.
  std::vector<Schedule> row_scheds;
  std::vector<int> row_depths;
  ExperienceDataset out;

  for (const auto& [key, idx] : groups) {
    const auto& [net_name, task_name, hw_fp] = key;
    (void)hw_fp;
    const std::vector<Sketch>** slot = &sketches_by_task[{net_name, task_name}];
    if (*slot == nullptr) {
      const Subgraph* graph = resolver ? resolver(net_name, task_name) : nullptr;
      if (graph == nullptr) {
        local.unknown_tasks += idx.size();
        sketches_by_task.erase({net_name, task_name});
        continue;
      }
      sketch_sets.push_back(
          std::make_unique<std::vector<Sketch>>(generate_sketches(*graph)));
      *slot = sketch_sets.back().get();
    }
    const std::vector<Sketch>& sketches = **slot;

    std::vector<Schedule> group_scheds;
    std::vector<double> group_times;
    double best = 0;
    for (std::size_t i : idx) {
      const TuningRecord& r = records_[i];
      std::string error;
      Schedule s = schedule_from_record(r, sketches, num_unroll, &error);
      if (s.sketch == nullptr) {
        ++local.invalid_schedules;
        continue;
      }
      group_scheds.push_back(std::move(s));
      group_times.push_back(r.time_ms);
      best = best == 0 ? r.time_ms : std::min(best, r.time_ms);
    }
    if (group_scheds.empty()) continue;
    ++local.groups;

    std::map<std::uint64_t, std::size_t> row_by_prefix;  // key -> out row
    for (std::size_t k = 0; k < group_scheds.size(); ++k) {
      const Schedule& s = group_scheds[k];
      double final_score = best / group_times[k];  // in (0, 1]
      int num_stages = static_cast<int>(s.stages.size());
      for (int d = 1; d <= num_stages; ++d) {
        std::uint64_t pfp = prefix_fingerprint(s, d);
        auto [it, inserted] = row_by_prefix.emplace(pfp, out.labels.size());
        if (inserted) {
          row_scheds.push_back(s);
          row_depths.push_back(d);
          out.labels.push_back(final_score);
        } else {
          out.labels[it->second] = std::max(out.labels[it->second], final_score);
        }
      }
    }
  }

  out.rows = row_scheds.size();
  local.rows = out.rows;
  out.num_features = FeatureExtractor::kNumPrefixFeatures;
  out.features.resize(out.rows * FeatureExtractor::kNumPrefixFeatures);
  if (out.rows > 0) {
    FeatureExtractor fx(&hw);
    for (std::size_t i = 0; i < out.rows; ++i) {
      fx.extract_prefix_into(
          row_scheds[i], row_depths[i],
          out.features.data() + i * FeatureExtractor::kNumPrefixFeatures);
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

Gbdt ExperienceStore::pretrain(const HardwareConfig& hw, const GbdtConfig& cfg,
                               const TaskResolver& resolver, HarvestStats* stats,
                               ThreadPool* pool) const {
  ExperienceDataset data = build_dataset(hw, resolver, stats, pool);
  Gbdt model(cfg);
  if (data.rows >= 4) {
    model.fit(data.features, FeatureExtractor::kNumFeatures, data.labels);
  } else if (data.rows > 0) {
    HARL_LOG_WARN("experience: only %zu harvested rows, model left untrained",
                  data.rows);
  }
  return model;
}

Gbdt ExperienceStore::pretrain_value(const HardwareConfig& hw,
                                     const GbdtConfig& cfg,
                                     const TaskResolver& resolver,
                                     HarvestStats* stats) const {
  ExperienceDataset data = build_value_dataset(hw, resolver, stats);
  Gbdt model(cfg);
  if (data.rows >= 4) {
    model.fit(data.features, FeatureExtractor::kNumPrefixFeatures, data.labels);
  } else if (data.rows > 0) {
    HARL_LOG_WARN("experience: only %zu value rows, model left untrained",
                  data.rows);
  }
  return model;
}

}  // namespace harl
