/// Reproduces the motivating observations of Figure 1:
///
///  (a) greedy (Ansor-style) trial allocation on BERT's five most
///      time-consuming subgraphs, with the share of trials that only bought
///      the final 1% of improvement (Observation 1: greedy allocation wastes
///      iterations);
///  (b) the distribution of improvement ratios when the next schedule is
///      selected *uniformly* (Ansor's schedule transition assumption):
///      200 random programs x 20 uniform modifications — mass concentrates
///      around ratio 1.0, i.e. most uniform moves do not help;
///  (c) the histogram of the best-schedule position along fixed-length
///      Flextensor search paths on GEMM operators (Observation 2: most paths
///      peak in the first 40% of their steps).

#include "bench_common.hpp"

using namespace harl;
using namespace harl::bench;

namespace {

void figure_1a(const BenchArgs& args) {
  std::int64_t trials = args.trials > 0 ? args.trials : (args.paper ? 3000 : 800);
  Network bert = make_bert(1);
  SearchOptions opts = args.options(PolicyKind::kAnsor);  // greedy allocation
  TuningSession session(std::move(bert), HardwareConfig::xeon_6226r(), opts);
  session.run(trials);

  TaskScheduler& sched = session.scheduler();
  // Find the trial count at which the estimated latency last crossed within
  // 1% of its final value.
  double final_latency = sched.estimated_latency_ms();
  std::int64_t last1pct_start = 0;
  for (const auto& r : sched.round_log()) {
    if (std::isfinite(r.net_latency_ms) && r.net_latency_ms > final_latency * 1.01) {
      last1pct_start = r.trials_after;
    }
  }
  // Allocations per task before/within the last-1% regime.
  std::vector<std::int64_t> total_alloc = sched.task_allocations();
  std::vector<std::int64_t> tail_alloc(total_alloc.size(), 0);
  for (const auto& r : sched.round_log()) {
    if (r.trials_after > last1pct_start) {
      tail_alloc[static_cast<std::size_t>(r.task)] += opts.measures_per_round;
    }
  }
  // Rank tasks by weighted execution time (the "top-5 most time-consuming").
  std::vector<int> order(total_alloc.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return sched.network().subgraphs[static_cast<std::size_t>(a)].weight() *
               sched.task(a).best_time_ms() >
           sched.network().subgraphs[static_cast<std::size_t>(b)].weight() *
               sched.task(b).best_time_ms();
  });

  Table t("Figure 1(a): greedy allocations on BERT's top-5 subgraphs");
  t.set_header({"subgraph", "total trials", "trials for last 1%", "bar"});
  std::int64_t max_alloc = 1;
  for (std::int64_t a : total_alloc) max_alloc = std::max(max_alloc, a);
  std::int64_t top5_total = 0, top5_tail = 0, all = 0, all_tail = 0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    int i = order[k];
    all += total_alloc[static_cast<std::size_t>(i)];
    all_tail += tail_alloc[static_cast<std::size_t>(i)];
    if (k < 5) {
      top5_total += total_alloc[static_cast<std::size_t>(i)];
      top5_tail += tail_alloc[static_cast<std::size_t>(i)];
      t.add(sched.network().subgraphs[static_cast<std::size_t>(i)].name(),
            total_alloc[static_cast<std::size_t>(i)],
            tail_alloc[static_cast<std::size_t>(i)],
            ascii_bar(static_cast<double>(total_alloc[static_cast<std::size_t>(i)]),
                      static_cast<double>(max_alloc), 30));
    }
  }
  t.print();
  std::printf(
      "share of ALL trials spent on the final 1%% improvement: %.1f%%\n"
      "(paper observes >35%% under greedy allocation)\n\n",
      100.0 * static_cast<double>(all_tail) / static_cast<double>(std::max<std::int64_t>(1, all)));
  args.maybe_save(t, "fig1a_allocations");
}

void figure_1b(const BenchArgs& args) {
  HardwareConfig hw = HardwareConfig::xeon_6226r();
  hw.noise_sigma = 0;
  CostSimulator sim(hw);
  Rng rng(args.seed ^ 0xF1BULL);
  std::vector<double> ratios;
  auto cases = table6_all(1);
  for (int prog = 0; prog < 200; ++prog) {
    const Subgraph& g = cases[rng.pick_index(cases.size())].graph;
    auto sketches = generate_sketches(g);
    const Sketch& sk = sketches[rng.pick_index(sketches.size())];
    ActionSpace space(sk, hw.num_unroll_options());
    Schedule s = random_schedule(sk, hw.num_unroll_options(), rng);
    double t0 = sim.simulate_ms(s);
    for (int step = 0; step < 20; ++step) {
      Schedule next = s;
      if (!space.mutate(&next, rng)) continue;  // uniform next-schedule pick
      double t1 = sim.simulate_ms(next);
      ratios.push_back(t0 / t1);  // >1 = improvement (perf ratio)
    }
  }
  SampleStats st = compute_stats(ratios);
  Table t("Figure 1(b): improvement ratio of uniform schedule selection");
  t.set_header({"stat", "value"});
  t.add("samples", st.count);
  t.add("median", Table::fmt(st.median, 4));
  t.add("p25", Table::fmt(st.p25, 4));
  t.add("p75", Table::fmt(st.p75, 4));
  t.add("mean", Table::fmt(st.mean, 4));
  double near_one = 0;
  for (double r : ratios) near_one += (r > 0.95 && r < 1.05) ? 1 : 0;
  t.add("share in [0.95, 1.05]", Table::fmt(near_one / st.count, 3));
  t.print();
  std::printf("(paper: the violin mass sits at ratio ~1.0 — uniform moves rarely help)\n\n");
  args.maybe_save(t, "fig1b_improvement_ratio");
}

void figure_1c(const BenchArgs& args) {
  std::int64_t trials = args.trials > 0 ? args.trials : (args.paper ? 4000 : 1500);
  SearchOptions opts = args.options(PolicyKind::kFlextensor);
  Histogram hist(0, 1, 10);
  // Various GEMM operations, as in the paper's observation.
  for (const OperatorCase& c : table6_suite("GEMM-M", 1)) {
    TuningSession session(c.graph, HardwareConfig::xeon_6226r(), opts);
    session.run(trials / 4);
    hist.add_all(session.scheduler().policy(0).critical_positions());
  }
  Table t("Figure 1(c): best-schedule position on fixed-length Flextensor paths");
  t.set_header({"position", "count", "bar"});
  std::size_t max_count = 1;
  for (std::size_t b = 0; b < hist.num_bins(); ++b) {
    max_count = std::max(max_count, hist.count(b));
  }
  for (std::size_t b = 0; b < hist.num_bins(); ++b) {
    t.add(Table::fmt(hist.bin_lo(b) * 100, 0) + "-" + Table::fmt(hist.bin_hi(b) * 100, 0) + "%",
          hist.count(b),
          ascii_bar(static_cast<double>(hist.count(b)), static_cast<double>(max_count), 30));
  }
  t.print();
  double early = 1.0 - hist.fraction_at_or_above(0.4);
  std::printf(
      "share of paths peaking in the first 40%% of steps: %.1f%%\n"
      "(paper: most paths find their best within the first 40%%)\n",
      early * 100);
  args.maybe_save(t, "fig1c_path_efficiency");
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  std::printf("Figure 1: observations motivating HARL (%s preset)\n\n",
              args.paper ? "paper" : "quick");
  figure_1a(args);
  figure_1b(args);
  figure_1c(args);
  return 0;
}
