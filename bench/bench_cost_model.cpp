/// Cost-model hot-path benchmark: GBDT training and batched inference
/// throughput of the pre-sorted/histogram rewrite against the retained seed
/// implementation (`reference::ReferenceGbdt`, per-node re-sorting exact
/// greedy + per-schedule allocating extraction).
///
/// Four sections:
///   1. fit — wall time of seed vs pre-sorted exact vs histogram training
///      over growing sample counts (real extracted schedule features),
///   2. predict — 2000-candidate scoring: seed path (allocating per-schedule
///      extract + per-tree walk) vs flat batched path, serial and pooled,
///   3. combined — the acceptance headline: fit + predict_batch at
///      512 samples x 48 features x 2000 candidates, seed vs rewrite,
///   4. warm start — XgbCostModel update rounds at refit_period 1 vs 8.
///
/// Emits machine-readable `BENCH_cost_model.json` (override with --json
/// PATH) and exits non-zero if exact mode is not bit-identical to the
/// retained seed oracle (the seed algorithm with pinned tie order, see
/// gbdt_reference.hpp), so CI runs it as a gate next to `bench_parallel`.
///
/// Flags: --trials N --seed S --paper --csv DIR (see bench_common.hpp),
/// plus --json PATH and --candidates N.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cost/gbdt_reference.hpp"

namespace {

using namespace harl;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A feature matrix + labels extracted from real random schedules of a GEMM
/// task (the cost model's actual training distribution).
struct Dataset {
  std::vector<Schedule> scheds;
  std::vector<double> x;  ///< rows x kNumFeatures
  std::vector<double> y;  ///< normalized throughput labels
};

Dataset make_dataset(const FeatureExtractor& fx, const CostSimulator& sim,
                     const std::vector<Sketch>& sketches, int num_unroll,
                     std::size_t rows, std::uint64_t seed) {
  Dataset d;
  Rng rng(seed);
  d.scheds.reserve(rows);
  d.x.resize(rows * FeatureExtractor::kNumFeatures);
  d.y.resize(rows);
  std::vector<double> times(rows);
  double best = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    d.scheds.push_back(random_schedule(sketches[i % sketches.size()], num_unroll, rng));
    fx.extract_into(d.scheds.back(),
                    &d.x[i * FeatureExtractor::kNumFeatures]);
    times[i] = sim.simulate_ms(d.scheds.back());
    best = best == 0 ? times[i] : std::min(best, times[i]);
  }
  for (std::size_t i = 0; i < rows; ++i) d.y[i] = best / times[i];
  return d;
}

struct JsonWriter {
  std::string out = "{";
  bool first = true;
  void raw(const std::string& key, const std::string& value) {
    if (!first) out += ",";
    first = false;
    out += "\"" + key + "\":" + value;
  }
  void num(const std::string& key, double v) { raw(key, std::to_string(v)); }
  void boolean(const std::string& key, bool v) { raw(key, v ? "true" : "false"); }
  std::string finish() { return out + "}"; }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace harl;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  std::string json_path = "BENCH_cost_model.json";
  std::size_t candidates = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--candidates") == 0 && i + 1 < argc) {
      candidates = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    }
  }

  HardwareConfig hw = HardwareConfig::xeon_6226r();
  hw.noise_sigma = 0;
  CostSimulator sim(hw);
  FeatureExtractor fx(&hw);
  Subgraph gemm = make_gemm(512, 512, 512);
  auto sketches = generate_sketches(gemm);
  const int kW = FeatureExtractor::kNumFeatures;

  // --- Section 1: training throughput --------------------------------------
  Table fit_table("GBDT fit wall time (48 features, default config)");
  fit_table.set_header({"samples", "seed_s", "exact_s", "hist_s", "exact_speedup",
                        "hist_speedup"});
  double fit_seed_512 = 0, fit_exact_512 = 0;
  std::string fit_json = "[";
  for (std::size_t n : {std::size_t{128}, std::size_t{512}, std::size_t{2048}}) {
    Dataset d = make_dataset(fx, sim, sketches, hw.num_unroll_options(), n,
                             args.seed ^ n);
    GbdtConfig cfg;
    double t0 = now_seconds();
    reference::ReferenceGbdt seed_model(cfg);
    seed_model.fit(d.x, kW, d.y);
    double t1 = now_seconds();
    Gbdt exact_model(cfg);
    exact_model.fit(d.x, kW, d.y);
    double t2 = now_seconds();
    GbdtConfig hist_cfg = cfg;
    hist_cfg.split_mode = SplitMode::kHistogram;
    Gbdt hist_model(hist_cfg);
    hist_model.fit(d.x, kW, d.y);
    double t3 = now_seconds();
    double seed_s = t1 - t0, exact_s = t2 - t1, hist_s = t3 - t2;
    if (n == 512) {
      fit_seed_512 = seed_s;
      fit_exact_512 = exact_s;
    }
    fit_table.add(n, seed_s, exact_s, hist_s, seed_s / std::max(exact_s, 1e-12),
                  seed_s / std::max(hist_s, 1e-12));
    if (fit_json.size() > 1) fit_json += ",";
    fit_json += "{\"n\":" + std::to_string(n) +
                ",\"seed_s\":" + std::to_string(seed_s) +
                ",\"exact_s\":" + std::to_string(exact_s) +
                ",\"hist_s\":" + std::to_string(hist_s) + "}";
  }
  fit_json += "]";
  std::printf("%s\n", fit_table.to_string().c_str());
  args.maybe_save(fit_table, "cost_model_fit");

  // --- Section 2 + 3: inference and the combined acceptance path -----------
  const std::size_t n_train = 512;
  Dataset train = make_dataset(fx, sim, sketches, hw.num_unroll_options(), n_train,
                               args.seed ^ 0x5EEDULL);
  Dataset cand = make_dataset(fx, sim, sketches, hw.num_unroll_options(), candidates,
                              args.seed ^ 0xCA4DULL);
  GbdtConfig cfg;
  reference::ReferenceGbdt seed_model(cfg);
  double c0 = now_seconds();
  seed_model.fit(train.x, kW, train.y);
  double c1 = now_seconds();
  Gbdt fast_model(cfg);
  fast_model.fit(train.x, kW, train.y);
  double c2 = now_seconds();

  // Seed prediction path: allocate + extract per schedule, walk tree objects.
  std::vector<double> pred_seed(candidates);
  double p0 = now_seconds();
  for (std::size_t i = 0; i < candidates; ++i) {
    std::vector<double> f = fx.extract(cand.scheds[i]);
    pred_seed[i] = seed_model.predict(f.data());
  }
  double p1 = now_seconds();
  // Rewrite, serial: one flat matrix fill + flat-forest batch walk.
  std::vector<double> matrix(candidates * static_cast<std::size_t>(kW));
  std::vector<double> pred_fast(candidates);
  fx.extract_matrix_into(cand.scheds, matrix.data());
  // (matrix refilled inside the timed region; warm touch above avoids
  // first-fault noise in the comparison)
  double p2 = now_seconds();
  fx.extract_matrix_into(cand.scheds, matrix.data());
  fast_model.predict_batch(matrix.data(), candidates, pred_fast.data());
  double p3 = now_seconds();
  // Rewrite, pooled extraction + batch walk.
  ThreadPool pool(4);
  std::vector<double> pred_pool(candidates);
  double p4 = now_seconds();
  fx.extract_matrix_into(cand.scheds, matrix.data(), &pool);
  pool.parallel_for(candidates, [&](std::size_t i) {
    pred_pool[i] = fast_model.predict(&matrix[i * static_cast<std::size_t>(kW)]);
  });
  double p5 = now_seconds();

  double pred_seed_s = p1 - p0, pred_fast_s = p3 - p2, pred_pool_s = p5 - p4;
  Table pred_table("candidate scoring wall time (512-sample model)");
  pred_table.set_header({"path", "candidates", "wall_s", "cand_per_s", "speedup"});
  pred_table.add("seed per-schedule", candidates, pred_seed_s,
                 candidates / std::max(pred_seed_s, 1e-12), 1.0);
  pred_table.add("flat batch (serial)", candidates, pred_fast_s,
                 candidates / std::max(pred_fast_s, 1e-12),
                 pred_seed_s / std::max(pred_fast_s, 1e-12));
  pred_table.add("flat batch (pool=4)", candidates, pred_pool_s,
                 candidates / std::max(pred_pool_s, 1e-12),
                 pred_seed_s / std::max(pred_pool_s, 1e-12));
  std::printf("%s\n", pred_table.to_string().c_str());
  args.maybe_save(pred_table, "cost_model_predict");

  // Exact-mode gate: the rewrite must reproduce the seed oracle bit-for-bit
  // — same ensemble size, same predictions on every candidate.
  bool bitmatch = fast_model.num_trees_fit() == seed_model.num_trees_fit();
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < candidates; ++i) {
    if (pred_fast[i] != pred_seed[i]) ++mismatches;
    if (pred_fast[i] != pred_pool[i]) ++mismatches;  // pooled == serial too
  }
  bitmatch = bitmatch && mismatches == 0;

  double combined_seed = (c1 - c0) + pred_seed_s;
  double combined_new = (c2 - c1) + pred_fast_s;
  double combined_speedup = combined_seed / std::max(combined_new, 1e-12);
  std::printf("combined fit + predict_batch (512 x 48 x %zu): seed %.4fs, "
              "rewrite %.4fs, speedup %.1fx\n",
              candidates, combined_seed, combined_new, combined_speedup);
  std::printf("exact-mode bit-identical to seed: %s\n\n",
              bitmatch ? "yes" : "NO");

  // --- Section 4: warm-start update rounds ----------------------------------
  auto run_updates = [&](int refit_period) {
    CostModelConfig cm;
    cm.refit_period = refit_period;
    cm.warm_trees = 8;
    XgbCostModel model(&hw, cm);
    Rng rng(args.seed ^ 0xFEEDULL);
    // Pre-generate identical measurement rounds for both configurations.
    double wall = 0;
    for (int round = 0; round < 10; ++round) {
      std::vector<Schedule> ss;
      std::vector<double> ts;
      for (int i = 0; i < 64; ++i) {
        ss.push_back(random_schedule(sketches[static_cast<std::size_t>(i) % sketches.size()],
                                     hw.num_unroll_options(), rng));
        ts.push_back(sim.simulate_ms(ss.back()));
      }
      double t0u = now_seconds();
      model.update(ss, ts);
      wall += now_seconds() - t0u;
    }
    return wall;
  };
  double refit1_s = run_updates(1);
  double refit8_s = run_updates(8);
  Table warm_table("10 cost-model update rounds (64 new rows each)");
  warm_table.set_header({"refit_period", "wall_s", "speedup"});
  warm_table.add(1, refit1_s, 1.0);
  warm_table.add(8, refit8_s, refit1_s / std::max(refit8_s, 1e-12));
  std::printf("%s\n", warm_table.to_string().c_str());
  args.maybe_save(warm_table, "cost_model_warm_start");

  // --- Machine-readable summary ---------------------------------------------
  JsonWriter json;
  json.raw("samples", std::to_string(n_train));
  json.raw("features", std::to_string(kW));
  json.raw("candidates", std::to_string(candidates));
  json.raw("fit", fit_json);
  json.raw("predict", "{\"seed_s\":" + std::to_string(pred_seed_s) +
                          ",\"flat_serial_s\":" + std::to_string(pred_fast_s) +
                          ",\"flat_pool_s\":" + std::to_string(pred_pool_s) + "}");
  json.raw("combined", "{\"seed_s\":" + std::to_string(combined_seed) +
                           ",\"new_s\":" + std::to_string(combined_new) +
                           ",\"speedup\":" + std::to_string(combined_speedup) + "}");
  json.raw("warm_start", "{\"refit1_s\":" + std::to_string(refit1_s) +
                             ",\"refit8_s\":" + std::to_string(refit8_s) +
                             ",\"speedup\":" +
                             std::to_string(refit1_s / std::max(refit8_s, 1e-12)) +
                             "}");
  json.num("fit_seed_512_s", fit_seed_512);
  json.num("fit_exact_512_s", fit_exact_512);
  json.boolean("exact_bitmatch", bitmatch);
  std::string payload = json.finish();
  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "%s\n", payload.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
  }

  std::printf("exact-mode gate: %s\n", bitmatch ? "PASS" : "FAIL");
  return bitmatch ? 0 : 1;
}
