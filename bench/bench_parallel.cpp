/// Parallel-engine benchmark: batch-measurement scaling and serial-vs-parallel
/// determinism.
///
/// Three sections:
///   1. batch scaling — throughput of `Measurer::measure_batch` over pools of
///      1..N threads (speedup vs 1 thread; >= 2x at 4 threads on >= 4 cores),
///   2. determinism — batch results and full `TaskScheduler::round_log()`
///      bit-identical between a 1-thread (serial) pool and a multi-thread
///      pool for the same seed,
///   3. cache — trial savings from the measure cache on a duplicate-heavy
///      batch stream.
///
/// Exits non-zero if any determinism check fails, so CI can run it as a gate.
///
/// Flags: --trials N --seed S --paper --csv DIR (see bench_common.hpp),
/// plus --threads T to cap the scaling sweep.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace harl;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<Schedule> make_batch(const Sketch& sketch, int num_unroll,
                                 std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Schedule> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    batch.push_back(random_schedule(sketch, num_unroll, rng));
  }
  return batch;
}

/// Section 1: measure_batch wall time over thread counts.
bool bench_scaling(const bench::BenchArgs& args, std::size_t max_threads) {
  HardwareConfig hw = HardwareConfig::xeon_6226r();
  hw.noise_sigma = 0.05;
  CostSimulator sim(hw);
  Subgraph gemm = make_gemm(512, 512, 512);
  auto sketches = generate_sketches(gemm);
  const std::size_t batch_size = 256;
  const int repeats = 4;
  std::vector<Schedule> batch =
      make_batch(sketches[0], hw.num_unroll_options(), batch_size, args.seed);

  Table table("batch measurement scaling (batch=256, repeats=4)");
  table.set_header({"threads", "wall_s", "sched_per_s", "speedup", "identical"});

  std::vector<double> reference;  // 1-thread results
  double base_wall = 0;
  bool all_identical = true;
  for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
    ThreadPool pool(threads);
    Measurer m(&sim, args.seed ^ 0xBEEFULL);
    m.set_pool(&pool);
    std::vector<double> last;
    double t0 = now_seconds();
    for (int r = 0; r < repeats; ++r) {
      m.reset_trials();  // same trial indices every repeat -> same noise
      last = m.measure_batch(batch);
    }
    double wall = now_seconds() - t0;
    bool identical = true;
    if (threads == 1) {
      reference = last;
      base_wall = wall;
    } else {
      identical = (last == reference);
      all_identical &= identical;
    }
    double speedup = wall > 0 ? base_wall / wall : 0;
    table.add(threads, wall, repeats * static_cast<double>(batch_size) / wall,
              speedup, identical ? "yes" : "NO");
  }
  std::printf("%s\n", table.to_string().c_str());
  args.maybe_save(table, "parallel_scaling");
  return all_identical;
}

/// Section 2: a full tuning run replays bit-identically under parallelism.
bool bench_determinism(const bench::BenchArgs& args) {
  std::int64_t trials = args.trials > 0 ? args.trials : 200;

  auto run_one = [&](ThreadPool* pool) {
    SearchOptions opts = args.options(PolicyKind::kHarl);
    opts.pool = pool;
    TuningSession session(make_bert(1), HardwareConfig::xeon_6226r(), opts);
    session.run(trials);
    return std::make_pair(session.scheduler().round_log(),
                          session.latency_ms());
  };

  ThreadPool serial(1), wide(4);
  auto t0 = now_seconds();
  auto [log_serial, lat_serial] = run_one(&serial);
  auto t1 = now_seconds();
  auto [log_wide, lat_wide] = run_one(&wide);
  auto t2 = now_seconds();

  bool identical = lat_serial == lat_wide && log_serial.size() == log_wide.size();
  if (identical) {
    for (std::size_t i = 0; i < log_serial.size(); ++i) {
      identical &= log_serial[i].task == log_wide[i].task &&
                   log_serial[i].trials_after == log_wide[i].trials_after &&
                   log_serial[i].net_latency_ms == log_wide[i].net_latency_ms;
    }
  }

  Table table("tuning determinism (bert, HARL)");
  table.set_header({"pool", "rounds", "latency_ms", "wall_s"});
  table.add("serial(1)", log_serial.size(), lat_serial, t1 - t0);
  table.add("parallel(4)", log_wide.size(), lat_wide, t2 - t1);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("round_log bit-identical: %s\n\n", identical ? "yes" : "NO");
  args.maybe_save(table, "parallel_determinism");
  return identical;
}

/// Section 3: measure-cache effect on a duplicate-heavy stream.
void bench_cache(const bench::BenchArgs& args) {
  HardwareConfig hw = HardwareConfig::xeon_6226r();
  hw.noise_sigma = 0.05;
  CostSimulator sim(hw);
  Subgraph gemm = make_gemm(256, 256, 256);
  auto sketches = generate_sketches(gemm);
  // 64 distinct schedules, each requested 8 times.
  std::vector<Schedule> uniques =
      make_batch(sketches[0], hw.num_unroll_options(), 64, args.seed ^ 0xCAFEULL);

  Table table("measure cache on an 8x-repeated batch (512 requests)");
  table.set_header({"cache", "trials", "hits", "wall_s"});
  for (std::size_t capacity : {std::size_t{0}, std::size_t{4096}}) {
    Measurer m(&sim, args.seed);
    m.enable_cache(capacity);
    double t0 = now_seconds();
    for (int rep = 0; rep < 8; ++rep) m.measure_batch(uniques);
    double wall = now_seconds() - t0;
    table.add(capacity == 0 ? "off" : "on", m.trials_used(), m.cache().hits(),
              wall);
  }
  std::printf("%s\n", table.to_string().c_str());
  args.maybe_save(table, "parallel_cache");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace harl;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  std::size_t max_threads = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      max_threads = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    }
  }
  max_threads = std::max<std::size_t>(1, max_threads);

  bool ok = bench_scaling(args, max_threads);
  ok &= bench_determinism(args);
  bench_cache(args);

  std::printf("determinism: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
