/// Reproduces Figures 8 and 9: end-to-end neural network optimization on
/// BERT, ResNet-50 and MobileNet-V2, on the CPU and GPU hardware models, at
/// batch sizes 1 and 16 — normalized inference performance (Fig. 8) and
/// normalized search time (Fig. 9) for Ansor vs HARL.
///
/// Shape expected from the paper: HARL improves end-to-end performance by
/// ~8% (CPU) / ~9% (GPU) and cuts search time by up to 55% / 51%.
///
/// Flags beyond the common set:
///   --nets a,b     comma-separated subset of {bert,resnet50,mobilenet_v2}
///   --batches a,b  subset of {1,16}

#include "bench_common.hpp"

#include <cstring>
#include <sstream>

using namespace harl;
using namespace harl::bench;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  std::vector<std::string> nets = network_names();
  std::vector<std::int64_t> batches = {1, 16};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nets") == 0 && i + 1 < argc) {
      nets = split_csv(argv[++i]);
    } else if (std::strcmp(argv[i], "--batches") == 0 && i + 1 < argc) {
      batches.clear();
      for (const std::string& b : split_csv(argv[++i])) batches.push_back(std::atoll(b.c_str()));
    }
  }
  // The paper uses 12k-22k trials; the scaled default keeps the multi-task
  // dynamics (warmup + dozens of allocation decisions) at bench runtimes.
  std::int64_t trials = args.trials > 0 ? args.trials : (args.paper ? 4000 : 700);

  std::printf("Figures 8 & 9: end-to-end network optimization (%lld trials/run, %s preset)\n\n",
              (long long)trials, args.paper ? "paper" : "quick");

  struct Platform {
    const char* suffix;
    HardwareConfig hw;
  };
  std::vector<Platform> platforms = {{"", HardwareConfig::xeon_6226r()},
                                     {"(G)", HardwareConfig::rtx3090()}};

  for (std::int64_t batch : batches) {
    Table perf("Figure 8: normalized performance, batch=" + std::to_string(batch));
    perf.set_header({"network", "Ansor", "HARL", "HARL latency ms", "Ansor latency ms"});
    Table stime("Figure 9: normalized search time, batch=" + std::to_string(batch));
    stime.set_header({"network", "Ansor", "HARL", "HARL trials to reach Ansor-best"});

    for (const Platform& plat : platforms) {
      for (const std::string& name : nets) {
        double lat[2] = {0, 0};
        std::vector<TaskScheduler::RoundLog> harl_log;
        PolicyKind kinds[2] = {PolicyKind::kAnsor, PolicyKind::kHarl};
        for (int k = 0; k < 2; ++k) {
          TuningSession session(make_network(name, batch), plat.hw,
                                args.options(kinds[k]));
          session.run(trials);
          lat[k] = session.latency_ms();
          if (k == 1) harl_log = session.scheduler().round_log();
        }
        double best = std::min(lat[0], lat[1]);
        std::string label = name + plat.suffix;
        perf.add(label, Table::fmt(normalized_perf(lat[0], best), 3),
                 Table::fmt(normalized_perf(lat[1], best), 3), Table::fmt(lat[1], 3),
                 Table::fmt(lat[0], 3));

        // Search time: first trial count at which HARL's estimated latency
        // reaches Ansor's final latency.
        std::int64_t reach = trials;
        for (const auto& r : harl_log) {
          if (std::isfinite(r.net_latency_ms) && r.net_latency_ms <= lat[0]) {
            reach = r.trials_after;
            break;
          }
        }
        stime.add(label, "1.000",
                  Table::fmt(static_cast<double>(reach) / static_cast<double>(trials), 3),
                  std::to_string(reach) + "/" + std::to_string(trials));
      }
    }
    perf.print();
    std::printf("\n");
    stime.print();
    std::printf("\n");
    args.maybe_save(perf, "fig8_batch" + std::to_string(batch));
    args.maybe_save(stime, "fig9_batch" + std::to_string(batch));
  }
  return 0;
}
