/// Measurement-economy benchmark + acceptance gate: does the value-guided
/// beam + adaptive-sampling trial filter reach the experience warm path's
/// target quality in far fewer simulator invocations?
///
/// Per policy (HARL and AutoTVM-SA; Ansor's oversampled-init variant of the
/// hook is exercised by the unit tests instead, its cold best being too close
/// to the search optimum for a trials-to-target gate) on one Table 6
/// workload:
///   1. cold   — tune with a cold cost model; the final best is the target
///               quality (the same target bench_experience's warm path is
///               gated on),
///   2. log    — two donor runs (different seeds/policies) tune the workload
///               with record logging on,
///   3. fold   — the donor logs are harvested twice: `pretrain` gives the
///               experience model, `pretrain_value` gives the
///               partial-schedule value head; both are saved and loaded back,
///   4. check  — the loaded value model must predict bit-identically to the
///               in-memory one on fuzzed prefix rows (exit 5),
///   5. warm   — the cold run repeats with the experience model (the
///               bench_experience warm path; its trials-to-target is the
///               baseline invocation count),
///   6. guided — the warm run repeats with the value guide armed on top
///               (beam pruning + sampling filter); same seed, same budget.
///
/// Gate (exit 1): for every policy the guided run must reach the cold best
/// in at most 75% of the warm run's simulator invocations — i.e. >= 25%
/// fewer — with a final best no worse than the cold run's.
///
/// Determinism gates (exit 6), both with the guide fully armed:
///   - serial-vs-parallel: 1-thread and 4-thread pools produce bit-identical
///     round logs and final latency,
///   - crash-resume: replaying a guided run's full record log into a fresh
///     session reproduces the same best, and `verify_resume` finds no drift.
///
/// Emits BENCH_value_guide.json.
/// Flags: --trials N --seed S --paper --csv DIR (see bench_common.hpp).

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace harl;

struct PolicyResult {
  std::string policy;
  double cold_best = 0;
  std::int64_t warm_ttr = -1;    ///< warm trials to reach the cold best
  std::int64_t guided_ttr = -1;  ///< guided trials to reach the cold best
  double guided_best = 0;
  std::int64_t credited = 0;     ///< candidates credited without measurement
  bool pass = false;
};

/// One donor run with record logging; returns the log path.
std::string donor_run(const Subgraph& graph, const HardwareConfig& hw,
                      PolicyKind policy, std::uint64_t seed, std::int64_t trials,
                      const std::string& dir, const std::string& stem) {
  SearchOptions opts = quick_options(policy, seed);
  TuningSession session(graph, hw, opts);
  RecordLogger logger;
  std::string path = dir + "/" + stem + ".jsonl";
  std::remove(path.c_str());
  if (!logger.open(path, /*append=*/false)) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(2);
  }
  session.add_callback(&logger);
  session.run(trials);
  return path;
}

/// Bit-compare the saved+loaded value model on fuzzed prefix rows at every
/// depth (the save/load acceptance check, over the *prefix* feature width).
bool verify_value_roundtrip(const Gbdt& model, const Gbdt& loaded,
                            const Subgraph& graph, const HardwareConfig& hw,
                            std::uint64_t seed) {
  std::vector<Sketch> sketches = generate_sketches(graph);
  FeatureExtractor fx(&hw);
  Rng rng(seed);
  constexpr std::size_t kFuzz = 256;
  constexpr std::size_t kW = FeatureExtractor::kNumPrefixFeatures;
  std::vector<double> rows(kFuzz * kW);
  for (std::size_t i = 0; i < kFuzz; ++i) {
    const Sketch& sk = sketches[rng.pick_index(sketches.size())];
    Schedule s = random_schedule(sk, hw.num_unroll_options(), rng);
    int depth = 1 + static_cast<int>(rng.pick_index(
                        static_cast<std::size_t>(graph.num_stages())));
    fx.extract_prefix_into(s, depth, &rows[i * kW]);
  }
  std::vector<double> a(kFuzz), b(kFuzz);
  model.predict_batch(rows.data(), kFuzz, a.data());
  loaded.predict_batch(rows.data(), kFuzz, b.data());
  for (std::size_t i = 0; i < kFuzz; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

std::int64_t total_credited(const TuningSession& session) {
  std::int64_t n = 0;
  for (int i = 0; i < session.scheduler().num_tasks(); ++i) {
    n += session.scheduler().task(i).credited_candidates();
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  using bench::BenchArgs;
  BenchArgs args = BenchArgs::parse(argc, argv);
  std::int64_t trials = args.trials > 0 ? args.trials : 240;

  const std::string dir = "bench_value_guide_logs";
  ::mkdir(dir.c_str(), 0755);

  HardwareConfig hw = HardwareConfig::xeon_6226r();
  OperatorCase oc = table6_suite("GEMM-M", 1).front();
  const Subgraph* graph = &oc.graph;
  TaskResolver resolver = [graph](const std::string&,
                                  const std::string& task) -> const Subgraph* {
    return task == graph->name() ? graph : nullptr;
  };

  // Donor logs + both offline models, shared by every policy's guided run.
  std::string log_a = donor_run(oc.graph, hw, PolicyKind::kHarl,
                                args.seed + 101, trials, dir, "donor_a");
  std::string log_b = donor_run(oc.graph, hw, PolicyKind::kAnsor,
                                args.seed + 202, trials, dir, "donor_b");
  ExperienceStore store;
  store.add_log(log_a);
  store.add_log(log_b);
  GbdtConfig gcfg;
  gcfg.seed = args.seed + 7;
  HarvestStats xstats, vstats;
  Gbdt xmodel = store.pretrain(hw, gcfg, resolver, &xstats);
  Gbdt vmodel = store.pretrain_value(hw, gcfg, resolver, &vstats);
  if (!xmodel.trained() || !vmodel.trained()) {
    std::fprintf(stderr, "FAIL: harvest produced no trainable rows\n");
    return 2;
  }
  std::string xpath = dir + "/experience_model.json";
  std::string vpath = dir + "/value_model.json";
  std::string error;
  if (!save_gbdt(xmodel, xpath, &error) || !save_gbdt(vmodel, vpath, &error)) {
    std::fprintf(stderr, "save_gbdt: %s\n", error.c_str());
    return 2;
  }
  Gbdt vloaded;
  if (!load_gbdt(vpath, &vloaded, &error)) {
    std::fprintf(stderr, "load_gbdt: %s\n", error.c_str());
    return 2;
  }
  bool roundtrip_ok =
      verify_value_roundtrip(vmodel, vloaded, oc.graph, hw, args.seed + 13);
  if (!roundtrip_ok) {
    std::fprintf(stderr, "FAIL: loaded value model predictions diverge\n");
  }

  // Per-policy beam widths: HARL prunes its 32-track episode to 24; AutoTVM
  // keeps all 32 walkers (beam = walker count) and economizes through the
  // trial filter alone.
  auto guided_options = [&](PolicyKind policy) {
    SearchOptions opts = quick_options(policy, args.seed);
    opts.experience_model = xpath;
    opts.value_guide.enabled = true;
    opts.value_guide.model_path = vpath;
    opts.value_guide.beam_width = policy == PolicyKind::kHarl ? 24 : 32;
    opts.value_guide.sample_clusters = 8;
    return opts;
  };

  std::vector<PolicyKind> policies = {PolicyKind::kHarl, PolicyKind::kAutoTvmSa};
  std::vector<PolicyResult> results;
  for (PolicyKind policy : policies) {
    PolicyResult r;
    r.policy = policy_kind_name(policy);

    // 1. cold baseline: its final best is the target quality.
    SearchOptions cold_opts = quick_options(policy, args.seed);
    TuningSession cold(oc.graph, hw, cold_opts);
    cold.run(trials);
    r.cold_best = cold.task_best_ms(0);

    // 5. warm path (bench_experience's gate subject): experience model only.
    SearchOptions warm_opts = cold_opts;
    warm_opts.experience_model = xpath;
    TuningSession warm(oc.graph, hw, warm_opts);
    warm.run(trials);
    r.warm_ttr = trials_to_reach(warm.scheduler().task(0).curve(), r.cold_best);

    // 6. guided: warm + value beam + sampling filter, same seed and budget.
    TuningSession guided(oc.graph, hw, guided_options(policy));
    guided.run(trials);
    r.guided_best = guided.task_best_ms(0);
    r.guided_ttr =
        trials_to_reach(guided.scheduler().task(0).curve(), r.cold_best);
    r.credited = total_credited(guided);

    // >= 25% fewer simulator invocations to the same target, no quality loss.
    r.pass = r.warm_ttr > 0 && r.guided_ttr >= 0 &&
             4 * r.guided_ttr <= 3 * r.warm_ttr && r.guided_best <= r.cold_best;
    results.push_back(r);
  }

  // Determinism gate A: guided serial-vs-parallel bit-identity.
  auto guided_run = [&](ThreadPool* pool) {
    SearchOptions opts = guided_options(PolicyKind::kHarl);
    opts.pool = pool;
    TuningSession session(oc.graph, hw, opts);
    session.run(trials);
    return std::make_pair(session.scheduler().round_log(),
                          session.latency_ms());
  };
  ThreadPool serial(1), wide(4);
  auto [log_serial, lat_serial] = guided_run(&serial);
  auto [log_wide, lat_wide] = guided_run(&wide);
  bool parallel_ok =
      lat_serial == lat_wide && log_serial.size() == log_wide.size();
  if (parallel_ok) {
    for (std::size_t i = 0; i < log_serial.size(); ++i) {
      parallel_ok = parallel_ok &&
                    log_serial[i].task == log_wide[i].task &&
                    log_serial[i].trials_after == log_wide[i].trials_after &&
                    log_serial[i].net_latency_ms == log_wide[i].net_latency_ms;
    }
  }
  if (!parallel_ok) {
    std::fprintf(stderr,
                 "FAIL: guided run diverges between 1- and 4-thread pools\n");
  }

  // Determinism gate B: guided crash-resume bit-identity from a full log.
  bool resume_ok = true;
  {
    std::string glog = dir + "/guided.jsonl";
    std::remove(glog.c_str());
    SearchOptions opts = guided_options(PolicyKind::kHarl);
    TuningSession full(oc.graph, hw, opts);
    RecordLogger logger;
    if (!logger.open(glog, /*append=*/false)) {
      std::fprintf(stderr, "cannot open %s\n", glog.c_str());
      return 2;
    }
    full.add_callback(&logger);
    full.run(trials);
    logger.close();

    std::vector<TuningRecord> records = read_records(glog);
    TuningSession resumed(oc.graph, hw, opts);
    VerifyResumeReport report = verify_resume(resumed, records);
    ResumeStats stats = resume_session(resumed, records);
    resumed.run(trials);
    resume_ok = report.ok() && stats.records_matched > 0 &&
                resumed.latency_ms() == full.latency_ms();
    if (!resume_ok) {
      std::fprintf(stderr,
                   "FAIL: guided resume drifted (matched=%zu, mismatches=%zu, "
                   "%.17g vs %.17g ms)\n",
                   stats.records_matched, report.mismatches.size(),
                   resumed.latency_ms(), full.latency_ms());
    }
  }

  Table table("value guide: simulator invocations to reach the cold best");
  table.set_header({"policy", "cold best ms", "warm trials", "guided trials",
                    "guided best ms", "credited", "verdict"});
  bool all_pass = true;
  for (const PolicyResult& r : results) {
    table.add(r.policy, Table::fmt(r.cold_best, 4), r.warm_ttr, r.guided_ttr,
              Table::fmt(r.guided_best, 4), r.credited,
              r.pass ? ">=25% fewer" : "no gain");
    all_pass = all_pass && r.pass;
  }
  table.print();
  args.maybe_save(table, "value_guide");

  std::FILE* json = std::fopen("BENCH_value_guide.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\"trials\":%lld,\"seed\":%llu,\"value_rows\":%zu,"
                 "\"policies\":[",
                 static_cast<long long>(trials),
                 static_cast<unsigned long long>(args.seed), vstats.rows);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const PolicyResult& r = results[i];
      std::fprintf(json,
                   "%s{\"policy\":\"%s\",\"cold_best_ms\":%.17g,"
                   "\"warm_trials\":%lld,\"guided_trials\":%lld,"
                   "\"guided_best_ms\":%.17g,\"credited\":%lld,\"pass\":%s}",
                   i == 0 ? "" : ",", r.policy.c_str(), r.cold_best,
                   static_cast<long long>(r.warm_ttr),
                   static_cast<long long>(r.guided_ttr), r.guided_best,
                   static_cast<long long>(r.credited),
                   r.pass ? "true" : "false");
    }
    std::fprintf(json,
                 "],\"roundtrip_bit_identical\":%s,"
                 "\"serial_parallel_identical\":%s,\"resume_identical\":%s,"
                 "\"gate_pass\":%s}\n",
                 roundtrip_ok ? "true" : "false",
                 parallel_ok ? "true" : "false", resume_ok ? "true" : "false",
                 all_pass ? "true" : "false");
    std::fclose(json);
  }

  if (!roundtrip_ok) return 5;
  if (!parallel_ok || !resume_ok) return 6;
  if (!all_pass) {
    std::fprintf(stderr,
                 "FAIL: a policy did not reach the cold best in >=25%% fewer "
                 "simulator invocations\n");
    return 1;
  }
  std::printf("\ngate: value-guided search reached the cold best with >=25%% "
              "fewer simulator invocations on %zu/%zu policies\n",
              results.size(), results.size());
  return 0;
}
