/// Reproduces Figure 7 of the paper, the ablation study on one GEMM-L
/// (1024x1024x1024) operator:
///
///  (a) trials-vs-normalized-performance curves for Ansor, Hierarchical-RL
///      (HARL with fixed-length episodes) and full HARL — HARL should
///      dominate early and the adaptive-stopping module should add a margin
///      over the fixed-length variant;
///  (b) histogram of the critical step (position of the best-scored schedule
///      along each track, relative to track length) for fixed-length vs
///      adaptive-stopping — adaptive stopping shifts mass to the last bins
///      (few wasted steps), fixed length leaves the best early in the track.

#include "bench_common.hpp"

using namespace harl;
using namespace harl::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  std::int64_t trials = args.trials > 0 ? args.trials : (args.paper ? 1000 : 400);

  Subgraph gemm = make_gemm(1024, 1024, 1024);
  std::printf("Figure 7(a): GEMM-L 1024^3 ablation, %lld trials (%s preset)\n\n",
              (long long)trials, args.paper ? "paper" : "quick");

  struct Run {
    PolicyKind kind;
    double best_ms = 0;
    std::vector<CurvePoint> curve;
    std::vector<double> critical;
  };
  std::vector<Run> runs = {{PolicyKind::kAnsor},
                           {PolicyKind::kHarlFixedLength},
                           {PolicyKind::kHarl}};
  for (Run& r : runs) {
    TuningSession session(gemm, HardwareConfig::xeon_6226r(), args.options(r.kind));
    session.run(trials);
    r.best_ms = session.task_best_ms(0);
    r.curve = session.scheduler().task(0).curve();
    r.critical = session.scheduler().policy(0).critical_positions();
  }

  double global_best = 1e300;
  for (const Run& r : runs) global_best = std::min(global_best, r.best_ms);

  Table curve_table("Figure 7(a): normalized performance vs trials");
  std::vector<std::string> header = {"trials"};
  for (const Run& r : runs) header.push_back(policy_kind_name(r.kind));
  curve_table.set_header(header);
  for (std::int64_t t = trials / 10; t <= trials; t += trials / 10) {
    std::vector<std::string> row = {std::to_string(t)};
    for (const Run& r : runs) {
      double b = best_at(r.curve, t);
      row.push_back(Table::fmt(std::isfinite(b) ? global_best / b : 0.0, 3));
    }
    curve_table.add_row(row);
  }
  curve_table.print();
  args.maybe_save(curve_table, "fig7a_curves");

  std::printf("\nFinal bests: ");
  for (const Run& r : runs) {
    std::printf("%s=%.4f ms  ", policy_kind_name(r.kind), r.best_ms);
  }
  std::printf("\n\nFigure 7(b): critical-step position histograms\n");
  const char* labels[2] = {"Fixed-Length", "Adaptive-Stopping"};
  const Run* hist_runs[2] = {&runs[1], &runs[2]};
  Table fig7b("Figure 7(b): critical-step distribution (fraction per decile)");
  fig7b.set_header({"position", labels[0], labels[1]});
  Histogram hists[2] = {Histogram(0, 1, 10), Histogram(0, 1, 10)};
  for (int k = 0; k < 2; ++k) hists[k].add_all(hist_runs[k]->critical);
  for (std::size_t b = 0; b < 10; ++b) {
    std::vector<std::string> row = {
        Table::fmt(hists[0].bin_lo(b) * 100, 0) + "-" +
        Table::fmt(hists[0].bin_hi(b) * 100, 0) + "%"};
    for (int k = 0; k < 2; ++k) {
      double frac = hists[k].total() > 0 ? static_cast<double>(hists[k].count(b)) /
                                               static_cast<double>(hists[k].total())
                                         : 0;
      row.push_back(Table::fmt(frac, 3));
    }
    fig7b.add_row(row);
  }
  fig7b.print();
  args.maybe_save(fig7b, "fig7b_critical_steps");

  std::printf(
      "\nlast-10%% mass: fixed=%.3f adaptive=%.3f (paper: adaptive pushes most\n"
      "critical steps into the final decile => <10%% wasted steps)\n",
      hists[0].fraction_at_or_above(0.9), hists[1].fraction_at_or_above(0.9));
  return 0;
}
