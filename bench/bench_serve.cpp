/// Serving-daemon latency benchmark + acceptance gate: is harl_serve's query
/// path fast enough to sit in an interactive compile loop?  Starts an
/// in-process HarlServer on an ephemeral loopback port, warms its shard
/// cache with one small tuning job, then measures full client-side
/// round-trips (serialize -> TCP -> parse -> serve -> reply) for repeated
/// queries of the tuned task.
///
/// Gates (exit 1 on violation; exit 2 on setup failure):
///   query round-trip p50 <= 5 ms and p99 <= 50 ms
///   every reply an L1 hit (the warmed task must never degrade tiers)
/// Emits BENCH_serve.json for CI artifact diffing.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"

using namespace harl;
using namespace harl::bench;

namespace {

struct Percentiles {
  double p50 = 0, p90 = 0, p99 = 0, max = 0;
};

Percentiles percentiles(std::vector<double>& us) {
  std::sort(us.begin(), us.end());
  auto at = [&](double q) {
    return us[static_cast<std::size_t>(q * (us.size() - 1))];
  };
  return {at(0.50), at(0.90), at(0.99), us.back()};
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  const std::int64_t tune_trials = args.trials > 0 ? args.trials : 40;
  const int iterations = args.paper ? 5000 : 2000;

  ServerOptions opts;
  opts.state_dir = "bench_serve_state";
  opts.max_concurrent = 1;
  opts.tuning = quick_options(PolicyKind::kHarl);
  HarlServer server(std::move(opts));
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "FAIL: server start: %s\n", error.c_str());
    return 2;
  }

  // Warm the shard: one small tuning job makes bert_b1/GEMM-I an L1 resident.
  Request tune;
  tune.type = RequestType::kTune;
  tune.tenant = "bench";
  tune.network = "bert";
  tune.hw = "test";
  tune.trials = tune_trials;
  tune.seed = args.seed;
  Response admitted = server.handle_for_test(tune);
  if (!admitted.ok) {
    std::fprintf(stderr, "FAIL: tune admission: %s\n", admitted.error.c_str());
    return 2;
  }
  Request status;
  status.type = RequestType::kStatus;
  status.job = admitted.job;
  for (;;) {
    Response r = server.handle_for_test(status);
    if (!r.ok) {
      std::fprintf(stderr, "FAIL: status: %s\n", r.error.c_str());
      return 2;
    }
    if (r.state == "done") break;
    if (r.state == "stopped") {
      std::fprintf(stderr, "FAIL: warm-up job stopped early\n");
      return 2;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  LineClient cli;
  if (!cli.connect("127.0.0.1", server.port(), &error)) {
    std::fprintf(stderr, "FAIL: connect: %s\n", error.c_str());
    return 2;
  }
  const std::string query_line = request_to_json([] {
    Request q;
    q.type = RequestType::kQuery;
    q.network = "bert_b1";
    q.task = "GEMM-I";
    q.hw = "test";
    return q;
  }());

  std::vector<double> round_us, serve_us;
  round_us.reserve(static_cast<std::size_t>(iterations));
  serve_us.reserve(static_cast<std::size_t>(iterations));
  int non_l1 = 0;
  for (int i = 0; i < iterations; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    std::string reply;
    if (!cli.send_line(query_line, &error) ||
        !cli.recv_line(&reply, &error)) {
      std::fprintf(stderr, "FAIL: round-trip %d: %s\n", i, error.c_str());
      return 2;
    }
    auto t1 = std::chrono::steady_clock::now();
    Response resp;
    if (!response_from_json(reply, &resp, &error) || !resp.ok) {
      std::fprintf(stderr, "FAIL: reply %d: %s %s\n", i, error.c_str(),
                   resp.error.c_str());
      return 2;
    }
    if (resp.tier != "L1") ++non_l1;
    round_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    if (resp.serve_us >= 0) serve_us.push_back(resp.serve_us);
  }
  server.shutdown();

  Percentiles rt = percentiles(round_us);
  Percentiles sv = percentiles(serve_us);

  Table t("harl_serve query latency (" + std::to_string(iterations) +
          " round-trips, loopback)");
  t.set_header({"metric", "p50 us", "p90 us", "p99 us", "max us"});
  t.add("client round-trip", Table::fmt(rt.p50, 1), Table::fmt(rt.p90, 1),
        Table::fmt(rt.p99, 1), Table::fmt(rt.max, 1));
  t.add("server-side serve", Table::fmt(sv.p50, 1), Table::fmt(sv.p90, 1),
        Table::fmt(sv.p99, 1), Table::fmt(sv.max, 1));
  t.print();
  args.maybe_save(t, "serve_latency");

  const double kP50GateUs = 5000.0;   // 5 ms
  const double kP99GateUs = 50000.0;  // 50 ms
  const bool latency_ok = rt.p50 <= kP50GateUs && rt.p99 <= kP99GateUs;
  const bool tier_ok = non_l1 == 0;

  std::FILE* json = std::fopen("BENCH_serve.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\"iterations\":%d,\"roundtrip_p50_us\":%.2f,"
                 "\"roundtrip_p90_us\":%.2f,\"roundtrip_p99_us\":%.2f,"
                 "\"roundtrip_max_us\":%.2f,\"serve_p50_us\":%.2f,"
                 "\"serve_p99_us\":%.2f,\"non_l1_replies\":%d,"
                 "\"p50_gate_us\":%.0f,\"p99_gate_us\":%.0f,"
                 "\"gate_pass\":%s}\n",
                 iterations, rt.p50, rt.p90, rt.p99, rt.max, sv.p50, sv.p99,
                 non_l1, kP50GateUs, kP99GateUs,
                 latency_ok && tier_ok ? "true" : "false");
    std::fclose(json);
  }

  if (!latency_ok || !tier_ok) {
    std::fprintf(stderr,
                 "FAIL: gate (p50 %.1f us <= %.0f us: %s, p99 %.1f us <= "
                 "%.0f us: %s, non-L1 replies %d)\n",
                 rt.p50, kP50GateUs, rt.p50 <= kP50GateUs ? "yes" : "NO",
                 rt.p99, kP99GateUs, rt.p99 <= kP99GateUs ? "yes" : "NO",
                 non_l1);
    return 1;
  }
  std::printf("\ngate: p50 %.1f us, p99 %.1f us round-trip, all %d replies "
              "L1 — PASS\n",
              rt.p50, rt.p99, iterations);
  return 0;
}
