/// Reproduces the Appendix A.4 sensitivity studies on the 1024x1024x1024
/// GEMM (1000 trials in the paper):
///
///   Table 7: adaptive-stopping window size lambda in {10, 20, 40, 80} —
///   normalized final performance and normalized wall-clock time per search
///   iteration (small lambda kills tracks too early; large lambda inflates
///   episode cost).
///
///   Table 8: elimination ratio rho in {0.25, 0.5, 0.75} — rho = 0.75 drops
///   promising tracks (performance loss); rho = 0.25 costs more time per
///   iteration for a marginal gain.

#include "bench_common.hpp"

using namespace harl;
using namespace harl::bench;

namespace {

struct Outcome {
  double best_ms = 0;
  double seconds_per_round = 0;
};

/// One setting, averaged over several seeds (single-run variance at reduced
/// trial counts otherwise hides the lambda/rho trade-off).
Outcome run(const BenchArgs& args, std::int64_t trials, int lambda, double rho) {
  const int kSeeds = args.paper ? 1 : 3;
  Outcome avg;
  double inv_best_sum = 0;
  for (int s = 0; s < kSeeds; ++s) {
    SearchOptions opts = args.paper
                             ? paper_options(PolicyKind::kHarl, args.seed + s)
                             : quick_options(PolicyKind::kHarl, args.seed + s);
    opts.harl.stop.window = lambda;
    opts.harl.stop.elimination = rho;
    TuningSession session(make_gemm(1024, 1024, 1024), HardwareConfig::xeon_6226r(),
                          opts);
    session.run(trials);
    int rounds = std::max(1, session.scheduler().task(0).rounds());
    inv_best_sum += 1.0 / session.task_best_ms(0);
    avg.seconds_per_round += session.wall_seconds() / rounds;
  }
  avg.best_ms = kSeeds / inv_best_sum;  // harmonic mean of times = mean perf
  avg.seconds_per_round /= kSeeds;
  return avg;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  std::int64_t trials = args.trials > 0 ? args.trials : (args.paper ? 1000 : 400);
  std::printf("Tables 7 & 8: adaptive-stopping sensitivity on GEMM 1024^3 "
              "(%lld trials per setting, %s preset)\n\n",
              (long long)trials, args.paper ? "paper" : "quick");

  // --- Table 7: window size lambda ------------------------------------------
  {
    std::vector<int> lambdas = {10, 20, 40, 80};
    std::vector<Outcome> outs;
    for (int l : lambdas) outs.push_back(run(args, trials, l, 0.5));
    double best_perf = 0, max_time = 0;
    for (const Outcome& o : outs) {
      best_perf = std::max(best_perf, 1.0 / o.best_ms);
      max_time = std::max(max_time, o.seconds_per_round);
    }
    Table t7("Table 7: window size lambda");
    t7.set_header({"lambda", "Normalized Performance", "Normalized Time/Iteration"});
    for (std::size_t i = 0; i < lambdas.size(); ++i) {
      t7.add(lambdas[i], Table::fmt((1.0 / outs[i].best_ms) / best_perf, 3),
             Table::fmt(outs[i].seconds_per_round / max_time, 3));
    }
    t7.print();
    std::printf("(paper: lambda=10 loses performance ~0.917; lambda=80 costs full "
                "time/iteration)\n\n");
    args.maybe_save(t7, "table7_lambda");
  }

  // --- Table 8: elimination ratio rho ----------------------------------------
  {
    std::vector<double> rhos = {0.75, 0.5, 0.25};
    std::vector<Outcome> outs;
    for (double r : rhos) outs.push_back(run(args, trials, 20, r));
    double best_perf = 0, max_time = 0;
    for (const Outcome& o : outs) {
      best_perf = std::max(best_perf, 1.0 / o.best_ms);
      max_time = std::max(max_time, o.seconds_per_round);
    }
    Table t8("Table 8: elimination ratio rho");
    t8.set_header({"rho", "Normalized Performance", "Normalized Time/Iteration"});
    for (std::size_t i = 0; i < rhos.size(); ++i) {
      t8.add(Table::fmt(rhos[i], 2), Table::fmt((1.0 / outs[i].best_ms) / best_perf, 3),
             Table::fmt(outs[i].seconds_per_round / max_time, 3));
    }
    t8.print();
    std::printf("(paper: rho=0.75 drops to ~0.864; rho=0.25 buys ~1%% for the most "
                "time/iteration)\n");
    args.maybe_save(t8, "table8_rho");
  }
  return 0;
}
