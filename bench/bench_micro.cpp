/// google-benchmark micro-benchmarks for the substrate components: the
/// per-call costs that determine end-to-end tuning throughput (how much
/// search the auto-scheduler performs per measurement trial).

#include <benchmark/benchmark.h>

#include "core/harl.hpp"

namespace harl {
namespace {

const HardwareConfig& hw() {
  static HardwareConfig h = [] {
    HardwareConfig c = HardwareConfig::xeon_6226r();
    c.noise_sigma = 0;
    return c;
  }();
  return h;
}

void BM_SketchGeneration(benchmark::State& state) {
  Subgraph g = make_gemm_act(1024, 1024, 1024);
  for (auto _ : state) {
    auto sketches = generate_sketches(g);
    benchmark::DoNotOptimize(sketches);
  }
}
BENCHMARK(BM_SketchGeneration);

void BM_RandomSchedule(benchmark::State& state) {
  Subgraph g = make_gemm(1024, 1024, 1024);
  auto sketches = generate_sketches(g);
  Rng rng(1);
  for (auto _ : state) {
    Schedule s = random_schedule(sketches[0], hw().num_unroll_options(), rng);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_RandomSchedule);

void BM_SimulateGemm(benchmark::State& state) {
  CostSimulator sim(hw());
  Subgraph g = make_gemm(1024, 1024, 1024);
  auto sketches = generate_sketches(g);
  Rng rng(2);
  Schedule s = random_schedule(sketches[0], hw().num_unroll_options(), rng);
  for (auto _ : state) benchmark::DoNotOptimize(sim.simulate_ms(s));
}
BENCHMARK(BM_SimulateGemm);

void BM_SimulateConv2dFused(benchmark::State& state) {
  CostSimulator sim(hw());
  Subgraph g = make_conv2d_relu(1, 14, 14, 256, 256, 3, 1, 1);
  auto sketches = generate_sketches(g);
  Rng rng(3);
  Schedule s = random_schedule(sketches[0], hw().num_unroll_options(), rng);
  for (auto _ : state) benchmark::DoNotOptimize(sim.simulate_ms(s));
}
BENCHMARK(BM_SimulateConv2dFused);

void BM_FeatureExtraction(benchmark::State& state) {
  FeatureExtractor fx(&hw());
  Subgraph g = make_gemm(1024, 1024, 1024);
  auto sketches = generate_sketches(g);
  Rng rng(4);
  Schedule s = random_schedule(sketches[0], hw().num_unroll_options(), rng);
  for (auto _ : state) benchmark::DoNotOptimize(fx.extract(s));
}
BENCHMARK(BM_FeatureExtraction);

void BM_CostModelPredict(benchmark::State& state) {
  CostSimulator sim(hw());
  XgbCostModel model(&hw());
  Subgraph g = make_gemm(512, 512, 512);
  auto sketches = generate_sketches(g);
  Rng rng(5);
  std::vector<Schedule> ss;
  std::vector<double> ts;
  for (int i = 0; i < 256; ++i) {
    Schedule s = random_schedule(sketches[0], hw().num_unroll_options(), rng);
    ts.push_back(sim.simulate_ms(s));
    ss.push_back(std::move(s));
  }
  model.update(ss, ts);
  Schedule probe = random_schedule(sketches[0], hw().num_unroll_options(), rng);
  for (auto _ : state) benchmark::DoNotOptimize(model.predict(probe));
}
BENCHMARK(BM_CostModelPredict);

void BM_CostModelRefit256(benchmark::State& state) {
  CostSimulator sim(hw());
  Subgraph g = make_gemm(512, 512, 512);
  auto sketches = generate_sketches(g);
  Rng rng(6);
  std::vector<Schedule> ss;
  std::vector<double> ts;
  for (int i = 0; i < 256; ++i) {
    Schedule s = random_schedule(sketches[0], hw().num_unroll_options(), rng);
    ts.push_back(sim.simulate_ms(s));
    ss.push_back(std::move(s));
  }
  for (auto _ : state) {
    XgbCostModel model(&hw());
    model.update(ss, ts);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_CostModelRefit256);

void BM_PpoAct(benchmark::State& state) {
  Subgraph g = make_gemm(1024, 1024, 1024);
  auto sketches = generate_sketches(g);
  ActionSpace space(sketches[0], hw().num_unroll_options());
  FeatureExtractor fx(&hw());
  Rng rng(7);
  Schedule s = random_schedule(sketches[0], hw().num_unroll_options(), rng);
  std::vector<double> obs = rl_observation(fx, space, s);
  auto sizes = space.head_sizes();
  PpoAgent agent(static_cast<int>(obs.size()),
                 std::vector<int>(sizes.begin(), sizes.end()), PpoConfig{}, 1);
  std::vector<bool> mask;
  space.tile_action_mask(s, &mask);
  for (auto _ : state) benchmark::DoNotOptimize(agent.act(obs, mask, rng));
}
BENCHMARK(BM_PpoAct);

void BM_PpoTrainMinibatch(benchmark::State& state) {
  PpoConfig cfg;
  cfg.minibatch_size = 64;
  cfg.update_epochs = 1;
  PpoAgent agent(32, {16, 3, 3, 3}, cfg, 2);
  Rng rng(8);
  for (int i = 0; i < 512; ++i) {
    PpoTransition t;
    t.obs.assign(32, rng.next_double());
    t.actions = {rng.next_int(0, 15), rng.next_int(0, 2), rng.next_int(0, 2),
                 rng.next_int(0, 2)};
    t.logp = -2.0;
    t.reward = rng.next_normal();
    agent.store(std::move(t));
  }
  for (auto _ : state) benchmark::DoNotOptimize(agent.train(rng));
}
BENCHMARK(BM_PpoTrainMinibatch);

void BM_SwUcbSelectUpdate(benchmark::State& state) {
  SwUcb bandit(24);  // ResNet-50 task count
  Rng rng(9);
  for (auto _ : state) {
    int a = bandit.select();
    bandit.update(a, rng.next_double());
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_SwUcbSelectUpdate);

void BM_ActionMaskGemm(benchmark::State& state) {
  Subgraph g = make_gemm(1024, 1024, 1024);
  auto sketches = generate_sketches(g);
  ActionSpace space(sketches[0], hw().num_unroll_options());
  Rng rng(10);
  Schedule s = random_schedule(sketches[0], hw().num_unroll_options(), rng);
  std::vector<bool> mask;
  for (auto _ : state) {
    space.tile_action_mask(s, &mask);
    benchmark::DoNotOptimize(mask);
  }
}
BENCHMARK(BM_ActionMaskGemm);

void BM_MeasureBatch64(benchmark::State& state) {
  CostSimulator sim(hw());
  Measurer measurer(&sim, 11);
  Subgraph g = make_gemm(512, 512, 512);
  auto sketches = generate_sketches(g);
  Rng rng(11);
  std::vector<Schedule> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back(random_schedule(sketches[0], hw().num_unroll_options(), rng));
  }
  for (auto _ : state) benchmark::DoNotOptimize(measurer.measure_batch(batch));
}
BENCHMARK(BM_MeasureBatch64);

}  // namespace
}  // namespace harl

BENCHMARK_MAIN();
