/// Experience subsystem benchmark + acceptance gate: does a pre-trained cost
/// model make search reach the same quality in fewer simulator invocations?
///
/// Per workload (two Table 6 operator cases):
///   1. cold   — tune with a cold cost model; record the final best and the
///               trial count at which it was reached,
///   2. log    — two *donor* runs (different seeds/policies) tune the same
///               workload with record logging on,
///   3. fold   — the donor logs are compacted (`compact_records`) and
///               harvested together with their uncompacted originals (the
///               dedup contract makes the overlap a no-op), a GBDT is
///               pre-trained offline, saved, and loaded back,
///   4. check  — the loaded model must predict bit-identically to the
///               in-memory model on a fuzzed schedule batch (exit 5),
///   5. warm   — the cold run repeats with the loaded model as pretrained
///               prior; same seed, same trial budget.
///
/// Gate (exit 1): at least one workload must reach the cold run's final best
/// in strictly fewer simulator invocations, with a final best no worse than
/// the cold run's.  Emits BENCH_experience.json.
///
/// Flags: --trials N --seed S --paper --csv DIR (see bench_common.hpp).

#include <sys/stat.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace harl;

struct WorkloadResult {
  std::string name;
  double cold_best = 0;
  std::int64_t cold_ttr = -1;   ///< trials the cold run took to its final best
  double warm_best = 0;
  std::int64_t warm_ttr = -1;   ///< trials the warm run took to the cold best
  std::size_t harvested_rows = 0;
  bool pass = false;
};

/// One donor run with record logging; returns the log path.
std::string donor_run(const Subgraph& graph, const HardwareConfig& hw,
                      PolicyKind policy, std::uint64_t seed, std::int64_t trials,
                      const std::string& dir, const std::string& stem) {
  SearchOptions opts = quick_options(policy, seed);
  TuningSession session(graph, hw, opts);
  RecordLogger logger;
  std::string path = dir + "/" + stem + ".jsonl";
  std::remove(path.c_str());
  if (!logger.open(path, /*append=*/false)) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(2);
  }
  session.add_callback(&logger);
  session.run(trials);
  return path;
}

/// Bit-compare the saved+loaded model against the in-memory one on random
/// schedules of the workload (the save/load acceptance check).
bool verify_model_roundtrip(const Gbdt& model, const Gbdt& loaded,
                            const Subgraph& graph, const HardwareConfig& hw,
                            std::uint64_t seed) {
  std::vector<Sketch> sketches = generate_sketches(graph);
  FeatureExtractor fx(&hw);
  Rng rng(seed);
  constexpr std::size_t kFuzz = 256;
  std::vector<double> rows(kFuzz * FeatureExtractor::kNumFeatures);
  for (std::size_t i = 0; i < kFuzz; ++i) {
    const Sketch& sk = sketches[rng.pick_index(sketches.size())];
    Schedule s = random_schedule(sk, hw.num_unroll_options(), rng);
    fx.extract_into(s, &rows[i * FeatureExtractor::kNumFeatures]);
  }
  std::vector<double> a(kFuzz), b(kFuzz);
  model.predict_batch(rows.data(), kFuzz, a.data());
  loaded.predict_batch(rows.data(), kFuzz, b.data());
  for (std::size_t i = 0; i < kFuzz; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using bench::BenchArgs;
  BenchArgs args = BenchArgs::parse(argc, argv);
  std::int64_t trials = args.trials > 0 ? args.trials : 240;

  const std::string dir = "bench_experience_logs";
  ::mkdir(dir.c_str(), 0755);

  HardwareConfig hw = HardwareConfig::xeon_6226r();

  std::vector<OperatorCase> cases;
  cases.push_back(table6_suite("GEMM-M", 1).front());
  cases.push_back(table6_suite("C1D", 1).front());

  std::vector<WorkloadResult> results;
  bool roundtrip_ok = true;

  for (std::size_t c = 0; c < cases.size(); ++c) {
    const OperatorCase& oc = cases[c];
    WorkloadResult r;
    r.name = oc.suite + " " + oc.config;

    // 1. cold baseline.
    SearchOptions cold_opts = quick_options(PolicyKind::kHarl, args.seed);
    TuningSession cold(oc.graph, hw, cold_opts);
    cold.run(trials);
    r.cold_best = cold.task_best_ms(0);
    r.cold_ttr =
        trials_to_reach(cold.scheduler().task(0).curve(), r.cold_best);

    // 2. donor logs: two different seeds, two different policies — the
    // mixed-provenance case the harvester is specified for.
    std::string stem = "donor_" + std::to_string(c);
    std::string log_a = donor_run(oc.graph, hw, PolicyKind::kHarl,
                                  args.seed + 101, trials, dir, stem + "_a");
    std::string log_b = donor_run(oc.graph, hw, PolicyKind::kAnsor,
                                  args.seed + 202, trials, dir, stem + "_b");

    // 3. compact + harvest (originals and compactions together: the dedup
    // contract makes the overlap a no-op, proving compacted logs feed the
    // same harvest).
    std::string compact_a = dir + "/" + stem + "_a_compact.jsonl";
    CompactOptions copts;
    if (!compact_log(log_a, compact_a, copts)) {
      std::fprintf(stderr, "compact_log failed for %s\n", log_a.c_str());
      return 2;
    }
    ExperienceStore store;
    store.add_log(log_a);
    store.add_log(compact_a);
    store.add_log(log_b);
    GbdtConfig gcfg;
    gcfg.seed = args.seed + 7;
    HarvestStats hstats;
    // Single-operator workloads are not in the shipped network inventory, so
    // resolve them directly (the builtin resolver covers bert/resnet/...).
    const Subgraph* graph = &oc.graph;
    TaskResolver resolver = [graph](const std::string&,
                                    const std::string& task) -> const Subgraph* {
      return task == graph->name() ? graph : nullptr;
    };
    Gbdt model = store.pretrain(hw, gcfg, resolver, &hstats);
    r.harvested_rows = hstats.rows;
    if (!model.trained()) {
      std::fprintf(stderr, "FAIL: harvest produced no trainable rows for %s\n",
                   r.name.c_str());
      return 2;
    }

    // 4. save -> load -> bit-identity fuzz.
    std::string model_path = dir + "/" + stem + "_model.json";
    std::string error;
    if (!save_gbdt(model, model_path, &error)) {
      std::fprintf(stderr, "save_gbdt: %s\n", error.c_str());
      return 2;
    }
    Gbdt loaded;
    if (!load_gbdt(model_path, &loaded, &error)) {
      std::fprintf(stderr, "load_gbdt: %s\n", error.c_str());
      return 2;
    }
    if (!verify_model_roundtrip(model, loaded, oc.graph, hw, args.seed + 13)) {
      std::fprintf(stderr, "FAIL: loaded model predictions diverge (%s)\n",
                   model_path.c_str());
      roundtrip_ok = false;
    }

    // 5. warm run: same seed and budget as cold, pretrained prior on.
    SearchOptions warm_opts = cold_opts;
    warm_opts.experience_model = model_path;
    TuningSession warm(oc.graph, hw, warm_opts);
    warm.run(trials);
    r.warm_best = warm.task_best_ms(0);
    r.warm_ttr = trials_to_reach(warm.scheduler().task(0).curve(), r.cold_best);

    r.pass = r.warm_ttr >= 0 && r.warm_ttr < r.cold_ttr &&
             r.warm_best <= r.cold_best;
    results.push_back(r);
  }

  Table table("experience warm start: trials to reach the cold run's best");
  table.set_header({"workload", "rows", "cold best ms", "cold trials",
                    "warm trials", "warm best ms", "verdict"});
  bool any_pass = false;
  for (const WorkloadResult& r : results) {
    table.add(r.name, r.harvested_rows, Table::fmt(r.cold_best, 4), r.cold_ttr,
              r.warm_ttr, Table::fmt(r.warm_best, 4),
              r.pass ? "faster" : "no gain");
    any_pass = any_pass || r.pass;
  }
  table.print();
  args.maybe_save(table, "experience");

  std::FILE* json = std::fopen("BENCH_experience.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\"trials\":%lld,\"seed\":%llu,\"workloads\":[",
                 static_cast<long long>(trials),
                 static_cast<unsigned long long>(args.seed));
    for (std::size_t i = 0; i < results.size(); ++i) {
      const WorkloadResult& r = results[i];
      std::fprintf(json,
                   "%s{\"name\":\"%s\",\"rows\":%zu,\"cold_best_ms\":%.17g,"
                   "\"cold_trials\":%lld,\"warm_trials\":%lld,"
                   "\"warm_best_ms\":%.17g,\"pass\":%s}",
                   i == 0 ? "" : ",", r.name.c_str(), r.harvested_rows,
                   r.cold_best, static_cast<long long>(r.cold_ttr),
                   static_cast<long long>(r.warm_ttr), r.warm_best,
                   r.pass ? "true" : "false");
    }
    std::fprintf(json, "],\"roundtrip_bit_identical\":%s,\"gate_pass\":%s}\n",
                 roundtrip_ok ? "true" : "false", any_pass ? "true" : "false");
    std::fclose(json);
  }

  if (!roundtrip_ok) return 5;
  if (!any_pass) {
    std::fprintf(stderr,
                 "FAIL: no workload reached the cold best in fewer trials\n");
    return 1;
  }
  std::printf("\ngate: warm start reached the cold best in fewer simulator "
              "invocations on %d/%zu workloads\n",
              static_cast<int>(std::count_if(results.begin(), results.end(),
                                             [](const WorkloadResult& r) {
                                               return r.pass;
                                             })),
              results.size());
  return 0;
}
