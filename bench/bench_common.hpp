#pragma once

/// Shared helpers for the paper-reproduction benchmark harnesses.
///
/// Every bench binary accepts:
///   --trials N   measurement-trial budget per tuning run (scaled default)
///   --seed S     base RNG seed
///   --paper      use the paper's full-scale Table 5 settings (slower)
///   --csv DIR    also write each table as CSV into DIR
/// and prints the rows/series of its figure/table as aligned ASCII tables.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/harl.hpp"

namespace harl::bench {

struct BenchArgs {
  std::int64_t trials = 0;  ///< 0 = harness-specific default
  std::uint64_t seed = 42;
  bool paper = false;
  std::string csv_dir;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      auto next = [&](const char* flag) -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", flag);
          std::exit(2);
        }
        return argv[++i];
      };
      if (std::strcmp(argv[i], "--trials") == 0) {
        args.trials = std::atoll(next("--trials"));
      } else if (std::strcmp(argv[i], "--seed") == 0) {
        args.seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
      } else if (std::strcmp(argv[i], "--paper") == 0) {
        args.paper = true;
      } else if (std::strcmp(argv[i], "--csv") == 0) {
        args.csv_dir = next("--csv");
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf("flags: --trials N --seed S --paper --csv DIR\n");
        std::exit(0);
      }
    }
    return args;
  }

  SearchOptions options(PolicyKind kind) const {
    return paper ? paper_options(kind, seed) : quick_options(kind, seed);
  }

  void maybe_save(const Table& table, const std::string& name) const {
    if (csv_dir.empty()) return;
    std::string path = csv_dir + "/" + name + ".csv";
    if (!table.save_csv(path)) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
    }
  }
};

/// Normalized performance as in the paper's Figures 5/8: inverse execution
/// time divided by the best inverse execution time in the comparison group.
inline double normalized_perf(double time_ms, double best_time_ms) {
  if (time_ms <= 0) return 0;
  return best_time_ms / time_ms;
}

}  // namespace harl::bench
