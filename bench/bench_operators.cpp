/// Reproduces Figure 5 (normalized operator performance, Ansor vs HARL) and
/// Figure 6 (normalized search time) of the paper: the seven Table 6 operator
/// suites at batch sizes 1 and 16 on the CPU hardware model.
///
/// Shape expected from the paper: HARL's normalized performance is 1.0
/// everywhere (it is the best), Ansor lands around 0.78-0.94; HARL reaches
/// Ansor's final best using a fraction of Ansor's trials (0.23-0.63).
///
/// Default: the first (headline) configuration of each suite; pass
/// --all-configs to sweep all 4 configurations per suite (averaged).

#include "bench_common.hpp"

#include <cstring>

using namespace harl;
using namespace harl::bench;

namespace {

struct RunResult {
  double best_ms = 0;
  std::vector<CurvePoint> curve;
};

RunResult tune(const Subgraph& graph, PolicyKind kind, const BenchArgs& args,
               std::int64_t trials) {
  TuningSession session(graph, HardwareConfig::xeon_6226r(), args.options(kind));
  session.run(trials);
  return {session.task_best_ms(0), session.scheduler().task(0).curve()};
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  bool all_configs = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--all-configs") == 0) all_configs = true;
  }
  std::int64_t trials = args.trials > 0 ? args.trials : (args.paper ? 1000 : 300);

  std::printf("Figures 5 & 6: tensor operator optimization, Ansor vs HARL\n");
  std::printf("(trials per run: %lld, %s preset)\n\n", (long long)trials,
              args.paper ? "paper" : "quick");

  for (std::int64_t batch : {std::int64_t{1}, std::int64_t{16}}) {
    Table perf("Figure 5: normalized performance, batch=" + std::to_string(batch));
    perf.set_header({"suite", "Ansor", "HARL", "HARL/Ansor speedup"});
    Table time("Figure 6: normalized search time, batch=" + std::to_string(batch));
    time.set_header({"suite", "Ansor", "HARL", "HARL trials to reach Ansor-best"});

    for (const std::string& suite : table6_suite_names()) {
      auto cases = table6_suite(suite, batch);
      std::size_t n_cases = all_configs ? cases.size() : 1;
      double ansor_norm_sum = 0, harl_norm_sum = 0, speedup_sum = 0;
      double time_frac_sum = 0;
      std::int64_t reach_sum = 0;
      for (std::size_t c = 0; c < n_cases; ++c) {
        RunResult ansor = tune(cases[c].graph, PolicyKind::kAnsor, args, trials);
        RunResult harl = tune(cases[c].graph, PolicyKind::kHarl, args, trials);
        double best = std::min(ansor.best_ms, harl.best_ms);
        ansor_norm_sum += normalized_perf(ansor.best_ms, best);
        harl_norm_sum += normalized_perf(harl.best_ms, best);
        speedup_sum += ansor.best_ms / harl.best_ms;
        // Search time: trials HARL needs to match Ansor's final best,
        // normalized by Ansor's full budget (the paper normalizes to [0,1]).
        std::int64_t reach = trials_to_reach(harl.curve, ansor.best_ms);
        if (reach < 0) reach = trials;
        reach_sum += reach;
        time_frac_sum += static_cast<double>(reach) / static_cast<double>(trials);
      }
      double inv = 1.0 / static_cast<double>(n_cases);
      perf.add(suite, Table::fmt(ansor_norm_sum * inv, 3),
               Table::fmt(harl_norm_sum * inv, 3),
               Table::fmt(speedup_sum * inv, 3));
      time.add(suite, "1.000", Table::fmt(time_frac_sum * inv, 3),
               std::to_string(reach_sum / static_cast<std::int64_t>(n_cases)) + "/" +
                   std::to_string(trials));
    }
    perf.print();
    std::printf("\n");
    time.print();
    std::printf("\n");
    args.maybe_save(perf, "fig5_batch" + std::to_string(batch));
    args.maybe_save(time, "fig6_batch" + std::to_string(batch));
  }
  return 0;
}
