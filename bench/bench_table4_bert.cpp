/// Reproduces Table 4 (BERT-on-CPU subgraph breakdown) and Figure 10 (the
/// subgraph-MAB trial-allocation ablation):
///
///   Table 4: per-subgraph execution-time contribution of HARL's output, the
///   per-subgraph speedup of HARL over Ansor, the estimated (weighted-sum)
///   speedup, and the HARL-without-subgraph-MAB ablation row.
///
///   Figure 10: per-subgraph trial allocations for HARL vs HARL w/o the
///   subgraph MAB, split into trials spent before reaching Ansor's best
///   ("= Ansor") and after (" > Ansor").

#include "bench_common.hpp"

using namespace harl;
using namespace harl::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  std::int64_t trials = args.trials > 0 ? args.trials : (args.paper ? 6000 : 900);
  HardwareConfig hw = HardwareConfig::xeon_6226r();

  std::printf("Table 4 & Figure 10: BERT on CPU (%lld trials per run, %s preset)\n\n",
              (long long)trials, args.paper ? "paper" : "quick");

  // --- The three tuning runs ------------------------------------------------
  // Ansor baseline (greedy allocation), full HARL, HARL without subgraph MAB
  // (HARL's per-task policy under the greedy allocator).
  auto run = [&](PolicyKind kind, std::optional<TaskSelectKind> select) {
    SearchOptions opts = args.options(kind);
    opts.task_select = select;
    auto session = std::make_unique<TuningSession>(make_bert(1), hw, opts);
    session->run(trials);
    return session;
  };
  auto ansor = run(PolicyKind::kAnsor, std::nullopt);
  auto harl = run(PolicyKind::kHarl, std::nullopt);
  auto harl_nomab = run(PolicyKind::kHarl, TaskSelectKind::kGreedyGradient);

  const Network& net = harl->network();
  int n = harl->scheduler().num_tasks();

  // --- Table 4 ---------------------------------------------------------------
  double harl_total = harl->latency_ms();
  Table t4("Table 4: BERT subgraph breakdown (CPU)");
  t4.set_header({"subgraph", "exec-time contribution", "speedup vs Ansor"});
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return net.subgraphs[static_cast<std::size_t>(a)].weight() * harl->task_best_ms(a) >
           net.subgraphs[static_cast<std::size_t>(b)].weight() * harl->task_best_ms(b);
  });
  for (int i : order) {
    double contrib = net.subgraphs[static_cast<std::size_t>(i)].weight() *
                     harl->task_best_ms(i) / harl_total;
    double speedup = ansor->task_best_ms(i) / harl->task_best_ms(i);
    t4.add(net.subgraphs[static_cast<std::size_t>(i)].name(),
           Table::fmt(contrib * 100, 1) + "%", Table::fmt(speedup, 2) + "x");
  }
  double est_speedup = ansor->latency_ms() / harl->latency_ms();
  double nomab_speedup = ansor->latency_ms() / harl_nomab->latency_ms();
  t4.add("Estimated HARL (sum)", "100%", Table::fmt(est_speedup, 2) + "x");
  t4.add("Measured HARL (w/o subgraph MAB)", "-", Table::fmt(nomab_speedup, 2) + "x");
  t4.print();
  std::printf(
      "\n(paper: ~1.10x estimated speedup; w/o the subgraph MAB the speedup drops —\n"
      " greedy allocation over-feeds the big GEMMs)\n\n");
  args.maybe_save(t4, "table4_bert");

  // --- Figure 10 --------------------------------------------------------------
  // Split each run's per-task allocations at the round where its estimated
  // latency first reached Ansor's final latency.
  auto split_allocations = [&](TuningSession& session) {
    double target = ansor->latency_ms();
    std::vector<std::int64_t> upto(static_cast<std::size_t>(n), 0);
    std::vector<std::int64_t> after(static_cast<std::size_t>(n), 0);
    bool reached = false;
    int k = session.scheduler().options().measures_per_round;
    for (const auto& r : session.scheduler().round_log()) {
      (reached ? after : upto)[static_cast<std::size_t>(r.task)] += k;
      if (!reached && std::isfinite(r.net_latency_ms) && r.net_latency_ms <= target) {
        reached = true;
      }
    }
    return std::make_pair(upto, after);
  };
  auto [harl_upto, harl_after] = split_allocations(*harl);
  auto [nomab_upto, nomab_after] = split_allocations(*harl_nomab);

  Table f10("Figure 10: subgraph trial allocations (= Ansor | > Ansor)");
  f10.set_header({"subgraph", "HARL =A", "HARL >A", "w/oMAB =A", "w/oMAB >A", "HARL total bar"});
  std::int64_t max_total = 1;
  for (int i = 0; i < n; ++i) {
    max_total = std::max(max_total, harl_upto[static_cast<std::size_t>(i)] +
                                        harl_after[static_cast<std::size_t>(i)]);
    max_total = std::max(max_total, nomab_upto[static_cast<std::size_t>(i)] +
                                        nomab_after[static_cast<std::size_t>(i)]);
  }
  for (int i : order) {
    std::size_t k = static_cast<std::size_t>(i);
    f10.add(net.subgraphs[k].name(), harl_upto[k], harl_after[k], nomab_upto[k],
            nomab_after[k],
            ascii_bar(static_cast<double>(harl_upto[k] + harl_after[k]),
                      static_cast<double>(max_total), 24));
  }
  f10.print();
  std::printf(
      "\n(paper: with the MAB the big GEMM subgraphs get FEWER total trials and the\n"
      " small-but-improvable subgraphs like Softmax get more)\n");
  args.maybe_save(f10, "fig10_allocations");
  return 0;
}
