/// Component-level ablation of HARL's four learned/adaptive levels (the rows
/// of the paper's Table 1, each switched off independently):
///
///   full HARL                — all four levels learned/adaptive
///   w/o adaptive stopping    — fixed-length tracks ("Hierarchical-RL", Fig. 7a)
///   w/o sketch MAB           — uniform sketch choice (Ansor's assumption)
///   w/o RL policy            — uniform random parameter modifications
///   w/o RL + w/o adaptive    — both off: a cost-model-guided random walk
///
/// Extends the paper's Figure 7(a)/Table 4 ablations to every component on
/// the GEMM-L headline operator.  Expected shape: removing any component
/// costs performance or search speed; the RL policy and adaptive stopping
/// carry the largest margins.

#include "bench_common.hpp"

using namespace harl;
using namespace harl::bench;

int main(int argc, char** argv) {
  BenchArgs args = BenchArgs::parse(argc, argv);
  std::int64_t trials = args.trials > 0 ? args.trials : (args.paper ? 1000 : 300);
  Subgraph gemm = make_gemm(1024, 1024, 1024);

  std::printf("Component ablation on GEMM-L 1024^3 (%lld trials, %s preset)\n\n",
              (long long)trials, args.paper ? "paper" : "quick");

  struct Variant {
    const char* name;
    bool adaptive;
    bool sketch_mab;
    bool rl_policy;
  };
  std::vector<Variant> variants = {
      {"HARL (full)", true, true, true},
      {"w/o adaptive stopping", false, true, true},
      {"w/o sketch MAB", true, false, true},
      {"w/o RL policy", true, true, false},
      {"w/o RL + adaptive", false, true, false},
  };

  struct Result {
    double best_ms;
    std::vector<CurvePoint> curve;
  };
  std::vector<Result> results;
  for (const Variant& v : variants) {
    // make_policy derives stop.enabled from the PolicyKind, so the
    // fixed-length variants must go through kHarlFixedLength.
    PolicyKind kind = v.adaptive ? PolicyKind::kHarl : PolicyKind::kHarlFixedLength;
    SearchOptions opts = args.options(kind);
    opts.harl.use_sketch_mab = v.sketch_mab;
    opts.harl.use_rl_policy = v.rl_policy;
    TuningSession session(gemm, HardwareConfig::xeon_6226r(), opts);
    session.run(trials);
    results.push_back(
        {session.task_best_ms(0), session.scheduler().task(0).curve()});
  }

  double full_best = results[0].best_ms;
  Table t("HARL component ablation");
  t.set_header({"variant", "best ms", "vs full HARL", "trials to full-HARL best"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    std::int64_t reach = trials_to_reach(results[i].curve, full_best);
    t.add(variants[i].name, Table::fmt(results[i].best_ms, 4),
          Table::fmt(full_best / results[i].best_ms, 3),
          reach >= 0 ? std::to_string(reach) : std::string("never"));
  }
  t.print();
  args.maybe_save(t, "ablation_components");
  std::printf("\n(each row removes one Table 1 mechanism; 'vs full HARL' < 1.0 means\n"
              " the component was contributing performance)\n");
  return 0;
}
