/// Async callback bus benchmark + acceptance gate: does a slow consumer
/// stall the tuning hot loop?
///
/// Three identically-seeded runs of the same workload:
///   1. baseline — no callbacks,
///   2. sync     — a RecordLogger plus a deliberately slow consumer
///                 (sleeps 10 ms per record batch) on the tuning thread,
///   3. async    — the same consumers behind `SearchOptions::async_callbacks`
///                 (the scheduler-owned AsyncCallbackBus dispatcher).
///
/// Gates (non-zero exit so CI can run this as a check):
///   - exit 2: determinism — round_log, per-task bests, and the record-log
///     bytes must be bit-identical across all three modes (the bus must
///     observe, never influence),
///   - exit 1: latency — the async run's median per-round wall time must
///     stay within 10% (+1 ms scheduling slack) of the no-callback
///     baseline, while the sync run must demonstrably degrade (>= half the
///     injected sleep per round).  The post-run drain is reported
///     separately: async defers slow work, it does not delete it.
///
/// Emits BENCH_callback_bus.json.
///
/// Flags: --trials N (rounds here) --seed S --paper --csv DIR
/// (see bench_common.hpp).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace harl;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int kSleepMsPerBatch = 10;

/// The pathological consumer: a logger/uploader that takes 10 ms per batch.
struct SlowConsumer : TuningCallback {
  void on_records(const TaskScheduler&, int,
                  const std::vector<MeasuredRecord>&) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(kSleepMsPerBatch));
  }
};

Network bench_network() {
  Network net;
  net.name = "bus_bench";
  net.subgraphs.push_back(make_gemm(256, 256, 256, 1, "g_a", 2.0));
  net.subgraphs.push_back(make_gemm(128, 128, 128, 1, "g_b", 1.0));
  return net;
}

struct RunResult {
  std::vector<double> round_seconds;
  std::vector<TaskScheduler::RoundLog> round_log;
  std::vector<double> bests;
  std::string log_bytes;
  double drain_seconds = 0;

  double median_round_ms() const {
    std::vector<double> s = round_seconds;
    std::sort(s.begin(), s.end());
    return s.empty() ? 0 : s[s.size() / 2] * 1e3;
  }
};

std::string slurp(const std::string& path) {
  std::string bytes;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return bytes;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return bytes;
}

enum class Mode { kBaseline, kSync, kAsync };

RunResult run_mode(Mode mode, const SearchOptions& base_opts, int rounds,
                   const std::string& log_path) {
  Network net = bench_network();
  HardwareConfig hw = HardwareConfig::xeon_6226r();
  SearchOptions opts = base_opts;
  opts.async_callbacks.enabled = (mode == Mode::kAsync);
  // Ample capacity: the gate measures hot-loop decoupling, not backpressure.
  opts.async_callbacks.capacity = 4096;

  TuningSession session(net, hw, opts);
  SlowConsumer slow;
  RecordLogger logger;
  if (mode != Mode::kBaseline) {
    std::remove(log_path.c_str());
    if (!logger.open(log_path, /*append=*/false)) {
      std::fprintf(stderr, "cannot open %s\n", log_path.c_str());
      std::exit(3);
    }
    session.add_callback(&logger);
    session.add_callback(&slow);
  }

  RunResult out;
  out.round_seconds.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    double t0 = now_seconds();
    session.scheduler().run_round(session.measurer());
    out.round_seconds.push_back(now_seconds() - t0);
  }
  double t0 = now_seconds();
  session.scheduler().flush_callbacks();
  out.drain_seconds = now_seconds() - t0;

  out.round_log = session.scheduler().round_log();
  for (int i = 0; i < session.scheduler().num_tasks(); ++i) {
    out.bests.push_back(session.task_best_ms(i));
  }
  if (mode != Mode::kBaseline) {
    logger.close();
    out.log_bytes = slurp(log_path);
  }
  return out;
}

bool same_results(const RunResult& a, const RunResult& b, const char* what) {
  bool ok = true;
  if (a.round_log.size() != b.round_log.size()) {
    std::fprintf(stderr, "FAIL %s: round counts differ (%zu vs %zu)\n", what,
                 a.round_log.size(), b.round_log.size());
    return false;
  }
  for (std::size_t i = 0; i < a.round_log.size(); ++i) {
    if (a.round_log[i].task != b.round_log[i].task ||
        a.round_log[i].trials_after != b.round_log[i].trials_after ||
        a.round_log[i].net_latency_ms != b.round_log[i].net_latency_ms) {
      std::fprintf(stderr, "FAIL %s: round %zu differs\n", what, i);
      ok = false;
    }
  }
  if (a.bests != b.bests) {
    std::fprintf(stderr, "FAIL %s: per-task bests differ\n", what);
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const int rounds = args.trials > 0 ? static_cast<int>(args.trials) : 40;

  SearchOptions opts = args.options(PolicyKind::kHarl);
  opts.harl.stop.initial_tracks = 8;
  opts.harl.stop.min_tracks = 2;
  opts.harl.ppo.minibatch_size = 16;
  opts.harl.ppo.update_epochs = 1;
  opts.measures_per_round = 5;

  std::printf("callback-bus gate: %d rounds, %d ms sleeping consumer\n\n",
              rounds, kSleepMsPerBatch);

  RunResult baseline = run_mode(Mode::kBaseline, opts, rounds, "");
  RunResult sync = run_mode(Mode::kSync, opts, rounds, "bus_sync.jsonl");
  RunResult async = run_mode(Mode::kAsync, opts, rounds, "bus_async.jsonl");

  double base_ms = baseline.median_round_ms();
  double sync_ms = sync.median_round_ms();
  double async_ms = async.median_round_ms();

  Table table("per-round wall time with a 10 ms/batch consumer");
  table.set_header({"mode", "median round ms", "drain ms", "vs baseline"});
  table.add("no callbacks", Table::fmt(base_ms, 3), Table::fmt(0.0, 1), "1.00x");
  table.add("sync", Table::fmt(sync_ms, 3), Table::fmt(sync.drain_seconds * 1e3, 1),
            Table::fmt(sync_ms / base_ms, 2) + "x");
  table.add("async", Table::fmt(async_ms, 3),
            Table::fmt(async.drain_seconds * 1e3, 1),
            Table::fmt(async_ms / base_ms, 2) + "x");
  table.print();
  args.maybe_save(table, "callback_bus");

  bool deterministic = same_results(baseline, sync, "sync vs baseline") &&
                       same_results(baseline, async, "async vs baseline");
  bool log_identical =
      !sync.log_bytes.empty() && sync.log_bytes == async.log_bytes;
  if (!log_identical) {
    std::fprintf(stderr, "FAIL: async record log is not byte-identical to sync "
                         "(%zu vs %zu bytes)\n",
                 async.log_bytes.size(), sync.log_bytes.size());
  }

  // Latency gate.  The async hot loop must track the no-callback baseline
  // (10% + 1 ms scheduling slack); the sync loop must visibly pay the
  // consumer's sleep, or the gate isn't testing anything.
  double async_limit_ms = base_ms * 1.10 + 1.0;
  bool async_fast = async_ms <= async_limit_ms;
  bool sync_slow = sync_ms >= base_ms + 0.5 * kSleepMsPerBatch;
  if (!async_fast) {
    std::fprintf(stderr,
                 "FAIL: async median %.3f ms exceeds baseline-tracking limit "
                 "%.3f ms\n",
                 async_ms, async_limit_ms);
  }
  if (!sync_slow) {
    std::fprintf(stderr,
                 "FAIL: sync median %.3f ms does not show the consumer's "
                 "sleep over baseline %.3f ms (gate not discriminating)\n",
                 sync_ms, base_ms);
  }

  std::FILE* json = std::fopen("BENCH_callback_bus.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\"rounds\":%d,\"sleep_ms\":%d,"
                 "\"baseline_median_ms\":%.17g,\"sync_median_ms\":%.17g,"
                 "\"async_median_ms\":%.17g,\"async_drain_ms\":%.17g,"
                 "\"deterministic\":%s,\"log_identical\":%s,"
                 "\"async_fast\":%s,\"sync_slow\":%s}\n",
                 rounds, kSleepMsPerBatch, base_ms, sync_ms, async_ms,
                 async.drain_seconds * 1e3, deterministic ? "true" : "false",
                 log_identical ? "true" : "false", async_fast ? "true" : "false",
                 sync_slow ? "true" : "false");
    std::fclose(json);
  }
  std::remove("bus_sync.jsonl");
  std::remove("bus_async.jsonl");

  if (!deterministic || !log_identical) return 2;
  if (!async_fast || !sync_slow) return 1;
  std::printf("\ncallback-bus gate passed: async tracks baseline "
              "(%.2fx), sync degrades (%.2fx), results bit-identical\n",
              async_ms / base_ms, sync_ms / base_ms);
  return 0;
}
