/// Knowledge-cache serving benchmark + acceptance gate: are repeat queries
/// answered at memory speed, near-misses at model speed, and is the cache
/// file byte-stable?
///
///   1. search — one cold tuning run on bert_b1/GEMM-I with record logging:
///               the wall time a query pays *without* the cache, and the
///               donor knowledge for it,
///   2. build  — a KnowledgeCache hydrated from the log,
///   3. L1     — the same (network, task, hardware) query repeated: every
///               answer must be the L1 tier and bit-identical to the best
///               log record (the schedule the search found),
///   4. L2     — the structural sibling bert_b2/GEMM-I (2x batch, same
///               signature): must be the L2 tier, adapted to the new shape,
///   5. L3     — a stone-cold conv task: must report golden advice,
///   6. fuzz   — save -> load -> save must reproduce the cache bytes.
///
/// Gates: L1 median > 50us or L2 median > 50ms -> exit 1 (generous absolute
/// ceilings; the medians are orders of magnitude below them on any machine),
/// L1 not >= 1000x faster than the cold search -> exit 1, wrong tier or a
/// non-bit-identical answer -> exit 1, save/load byte drift -> exit 5,
/// setup failure -> exit 2.  Emits BENCH_knowledge_cache.json.
///
/// Flags: --trials N --seed S --paper --csv DIR (see bench_common.hpp).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/knowledge_cache.hpp"

namespace {

using namespace harl;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0 : v[v.size() / 2];
}

/// Median serve latency in microseconds over `reps` repeats (one untimed
/// warmup query builds the per-task sketch context first).
double timed_serve_us(KnowledgeCache& cache, const std::string& network,
                      const Subgraph& graph, const HardwareConfig& hw,
                      int reps, ServeResult* last) {
  *last = cache.serve(network, graph, hw);
  std::vector<double> us;
  us.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    *last = cache.serve(network, graph, hw);
    auto t1 = std::chrono::steady_clock::now();
    us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  return median(us);
}

}  // namespace

int main(int argc, char** argv) {
  using bench::BenchArgs;
  BenchArgs args = BenchArgs::parse(argc, argv);
  std::int64_t trials = args.trials > 0 ? args.trials : 150;

  HardwareConfig hw = HardwareConfig::xeon_6226r();

  // The served task, its structural sibling (2x batch), and a cold stranger.
  Network bert1 = make_network("bert", 1);
  Network bert2 = make_network("bert", 2);
  Network resnet = make_network("resnet50", 1);
  const Subgraph* gemm1 = nullptr;
  const Subgraph* gemm2 = nullptr;
  for (const Subgraph& g : bert1.subgraphs) {
    if (g.name() == "GEMM-I") gemm1 = &g;
  }
  for (const Subgraph& g : bert2.subgraphs) {
    if (g.name() == "GEMM-I") gemm2 = &g;
  }
  if (gemm1 == nullptr || gemm2 == nullptr || resnet.subgraphs.empty()) {
    std::fprintf(stderr, "workload inventory misses the bench tasks\n");
    return 2;
  }

  // 1. Cold search with record logging: what a query costs without a cache.
  Network one;
  one.name = bert1.name;  // keep the (network, task) provenance of the fleet
  one.subgraphs.push_back(*gemm1);
  SearchOptions opts = quick_options(PolicyKind::kHarl, args.seed);
  TuningSession session(one, hw, opts);
  RecordLogger logger;
  const std::string log_path = "bench_kcache.jsonl";
  std::remove(log_path.c_str());
  if (!logger.open(log_path, /*append=*/false)) {
    std::fprintf(stderr, "cannot open %s\n", log_path.c_str());
    return 2;
  }
  session.add_callback(&logger);
  auto s0 = std::chrono::steady_clock::now();
  session.run(trials);
  auto s1 = std::chrono::steady_clock::now();
  double search_us = std::chrono::duration<double, std::micro>(s1 - s0).count();

  // 2. Hydrate the cache; the best log record is the bit-identity reference.
  KnowledgeCache cache;
  std::size_t added = cache.insert_log(log_path);
  if (added == 0) {
    std::fprintf(stderr, "the donor run logged no usable records\n");
    return 2;
  }
  std::string best_line;
  double best_time = 0;
  for (const TuningRecord& rec : read_records(log_path)) {
    if (!(rec.time_ms > 0)) continue;
    std::string line = record_to_json(rec);
    if (best_line.empty() || rec.time_ms < best_time ||
        (rec.time_ms == best_time && line < best_line)) {
      best_time = rec.time_ms;
      best_line = std::move(line);
    }
  }

  // 3. L1: repeat query, memory speed, bit-identical to the search's best.
  ServeResult l1;
  double l1_us = timed_serve_us(cache, bert1.name, *gemm1, hw, 512, &l1);
  bool l1_ok = l1.tier == ServeTier::kL1 && record_to_json(l1.record) == best_line;

  // 4. L2: the 2x-batch sibling, adapted at model speed.
  ServeResult l2;
  double l2_us = timed_serve_us(cache, bert2.name, *gemm2, hw, 64, &l2);
  bool l2_ok = l2.tier == ServeTier::kL2 &&
               validate_schedule(l2.schedule, hw.num_unroll_options()).empty();

  // 5. L3: a structure the cache has never seen.
  ServeResult l3 = cache.serve(resnet.name, resnet.subgraphs.front(), hw);
  bool l3_ok = l3.tier == ServeTier::kL3;

  // 6. Byte-stability fuzz: save -> load -> save reproduces the bytes.
  std::string bytes = cache_to_json(cache);
  KnowledgeCache reloaded;
  std::string error;
  bool roundtrip_ok = cache_from_json(bytes, &reloaded, &error) &&
                      cache_to_json(reloaded) == bytes &&
                      cache_fingerprint(reloaded) == cache_fingerprint(cache);
  if (!roundtrip_ok && !error.empty()) {
    std::fprintf(stderr, "cache roundtrip: %s\n", error.c_str());
  }

  double speedup = l1_us > 0 ? search_us / l1_us : 0;
  bool l1_fast = l1_us <= 50.0;          // 50us ceiling (generous)
  bool l2_fast = l2_us <= 50.0 * 1000;   // 50ms ceiling (generous)
  bool fast_enough = speedup >= 1000.0;

  Table table("knowledge-cache serving latency");
  table.set_header({"path", "median", "tier", "verdict"});
  table.add("cold search", Table::fmt(search_us / 1e6, 3) + " s", "-", "baseline");
  table.add("L1 repeat query", Table::fmt(l1_us, 2) + " us",
            serve_tier_name(l1.tier),
            l1_ok ? (l1_fast ? "bit-identical" : "TOO SLOW") : "WRONG ANSWER");
  table.add("L2 sibling query", Table::fmt(l2_us / 1000, 3) + " ms",
            serve_tier_name(l2.tier),
            l2_ok ? (l2_fast ? "adapted" : "TOO SLOW") : "WRONG ANSWER");
  table.add("L3 cold task", "-", serve_tier_name(l3.tier),
            l3_ok ? "golden advice" : "WRONG TIER");
  table.add("L1 vs search", Table::fmt(speedup, 0) + "x", "-",
            fast_enough ? ">= 1000x" : "BELOW 1000x");
  table.print();
  args.maybe_save(table, "knowledge_cache");

  std::FILE* json = std::fopen("BENCH_knowledge_cache.json", "w");
  if (json != nullptr) {
    std::fprintf(
        json,
        "{\"trials\":%lld,\"seed\":%llu,\"search_us\":%.17g,"
        "\"l1_median_us\":%.17g,\"l2_median_us\":%.17g,\"speedup\":%.17g,"
        "\"l1_tier\":\"%s\",\"l2_tier\":\"%s\",\"l3_tier\":\"%s\","
        "\"l1_bit_identical\":%s,\"roundtrip_bit_identical\":%s,"
        "\"gate_pass\":%s}\n",
        static_cast<long long>(trials),
        static_cast<unsigned long long>(args.seed), search_us, l1_us, l2_us,
        speedup, serve_tier_name(l1.tier), serve_tier_name(l2.tier),
        serve_tier_name(l3.tier), l1_ok ? "true" : "false",
        roundtrip_ok ? "true" : "false",
        (l1_ok && l2_ok && l3_ok && l1_fast && l2_fast && fast_enough &&
         roundtrip_ok)
            ? "true"
            : "false");
    std::fclose(json);
  }

  if (!roundtrip_ok) {
    std::fprintf(stderr, "FAIL: cache save/load is not byte-stable\n");
    return 5;
  }
  if (!l1_ok || !l2_ok || !l3_ok) {
    std::fprintf(stderr, "FAIL: a tier served the wrong answer\n");
    return 1;
  }
  if (!l1_fast || !l2_fast || !fast_enough) {
    std::fprintf(stderr,
                 "FAIL: latency gate (L1 %.2f us <= 50 us: %s, L2 %.2f ms <= "
                 "50 ms: %s, speedup %.0fx >= 1000x: %s)\n",
                 l1_us, l1_fast ? "yes" : "NO", l2_us / 1000,
                 l2_fast ? "yes" : "NO", speedup, fast_enough ? "yes" : "NO");
    return 1;
  }
  std::printf("\ngate: L1 %.2f us (%.0fx faster than the %.2f s search), "
              "L2 %.3f ms, all tiers correct, bytes stable\n",
              l1_us, speedup, search_us / 1e6, l2_us / 1000);
  return 0;
}
