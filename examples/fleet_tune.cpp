/// Fleet tuning: serve several networks' tuning requests concurrently from
/// one shared worker pool — the multi-tenant scenario where one
/// auto-scheduler instance handles many models at once.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/fleet_tune [trials-per-network] [--log-dir=DIR]
///
/// With --log-dir, every network appends its measured records to
/// DIR/<network>.jsonl and warm-starts from that file on the next run: kill
/// this process at any point, re-run the same command, and each network
/// resumes from its last completed round (the "replayed" column counts the
/// trials served from the logs instead of the simulator).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/harl.hpp"

int main(int argc, char** argv) {
  using namespace harl;

  // Warmup tunes every task once (ResNet-50 has 24 tasks x 10 measures), so
  // budgets below ~250 leave the weighted latency estimate at +inf.
  std::int64_t trials = 400;
  std::string log_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--log-dir=", 10) == 0) {
      log_dir = argv[i] + 10;
    } else if (argv[i][0] != '-') {
      trials = std::atoll(argv[i]);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  // One pool serves every session's measurement batches and candidate
  // scoring; sessions themselves run on fleet threads.
  ThreadPool measure_pool;  // sized to hardware concurrency

  FleetTuner::Options fleet_opts;
  fleet_opts.measure_pool = &measure_pool;
  fleet_opts.log_dir = log_dir;
  FleetTuner fleet(fleet_opts);

  HardwareConfig cpu = HardwareConfig::xeon_6226r();
  for (const char* name : {"bert", "resnet50", "mobilenet_v2"}) {
    FleetWorkload w;
    w.network = make_network(name, /*batch=*/1);
    w.hardware = cpu;
    w.options = quick_options(PolicyKind::kHarl, /*seed=*/42);
    w.trials = trials;
    fleet.add(std::move(w));
  }

  std::printf("tuning %d networks x %lld trials on a %zu-thread pool%s%s...\n\n",
              fleet.num_workloads(), static_cast<long long>(trials),
              measure_pool.size(),
              log_dir.empty() ? "" : ", logs in ",
              log_dir.c_str());
  FleetReport report = fleet.run();
  std::printf("%s\n", report.to_string().c_str());

  // Per-network results are identical to tuning each network alone with the
  // same seed; concurrency only changes wall-clock time.
  for (int i = 0; i < fleet.num_workloads(); ++i) {
    const TuningSession& s = fleet.session(i);
    std::printf("%-14s best task latencies:", s.network().name.c_str());
    for (int t = 0; t < s.scheduler().num_tasks() && t < 4; ++t) {
      std::printf(" %.4f", s.task_best_ms(t));
    }
    std::printf("%s ms\n", s.scheduler().num_tasks() > 4 ? " ..." : "");
  }
  return 0;
}
