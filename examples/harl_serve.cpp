/// Tuning-as-a-service daemon: serve schedule queries from per-hardware
/// knowledge caches in microseconds and run admitted tuning jobs on a shared
/// fleet pool, over a versioned line-JSON protocol on 127.0.0.1 (see
/// docs/PROTOCOL.md).  SIGTERM/SIGINT drain gracefully: running jobs
/// checkpoint at their next round boundary and a restarted daemon resumes
/// them bit-identically from the same state directory.
///
///   harl_serve --state-dir=DIR [--port=N] [--max-concurrent=N]
///              [--default-budget=N] [--max-job-trials=N] [--refresh=N]
///              [--cross-refresh=N] [--value-model=PATH] [--beam-width=N]
///              [--sample-clusters=N] [--no-golden] [--replica]
///              [--watch-interval=MS] [--port-file=PATH] [--quiet]
///
///   --state-dir=DIR       durable root: per-hardware record logs + caches,
///                         the jobs.jsonl journal, and the `port` file
///   --port=N              TCP port on 127.0.0.1 (default 0 = ephemeral;
///                         the chosen port is written to DIR/port)
///   --max-concurrent=N    tuning jobs run at once (default 2)
///   --default-budget=N    trial budget a new tenant starts with
///                         (default 100000; `hello` can raise it)
///   --max-job-trials=N    per-job trial cap at admission (default 10000)
///   --refresh=N           in-run experience refresh period in rounds
///                         (default 0 = off, keeping restart resume
///                         bit-identical)
///   --cross-refresh=N     cross-shard warm-up: refit one experience model
///                         per hardware shard every N rounds from every
///                         shard's records (default 0 = off; like --refresh,
///                         it changes later sessions' run identity)
///   --value-model=PATH    partial-schedule value model (harl_harvest value)
///                         shared by every admitted job; part of each job's
///                         run identity — a restarted daemon must pass the
///                         same model for bit-identical resume
///   --beam-width=N        value-guided beam width for admitted jobs
///                         (default 16; needs --value-model)
///   --sample-clusters=N   measure only N representative candidates per
///                         round, crediting the rest via the cost model
///                         (default 0 = off)
///   --no-golden           report misses instead of golden advice (L3)
///   --replica             read-only replica: share a primary's state dir,
///                         serve query/stats only, and hot-reload each
///                         shard's published cache + experience model when
///                         the primary republishes them
///   --watch-interval=MS   replica poll cadence for published files
///                         (default 100)
///   --port-file=PATH      write the bound port here (default DIR/port for
///                         a primary, nothing for a replica — replicas never
///                         clobber the primary's discovery file)
///   --quiet               suppress the startup banner
///   --help                print usage and exit
///
/// Exit codes: 0 clean shutdown, 1 setup error, 2 usage error.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/harl.hpp"
#include "server/server.hpp"

namespace {

using namespace harl;

bool flag_value(const char* arg, const char* name, const char** value) {
  std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: harl_serve --state-dir=DIR [--port=N]\n"
               "                  [--max-concurrent=N] [--default-budget=N]\n"
               "                  [--max-job-trials=N] [--refresh=N]\n"
               "                  [--cross-refresh=N]\n"
               "                  [--value-model=PATH] [--beam-width=N]\n"
               "                  [--sample-clusters=N] [--no-golden]\n"
               "                  [--replica] [--watch-interval=MS]\n"
               "                  [--port-file=PATH] [--quiet] [--help]\n");
}

HarlServer* g_server = nullptr;

/// Async-signal-safe: one atomic store; serve_forever() does the drain.
void handle_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions opts;
  opts.tuning = quick_options(PolicyKind::kHarl);
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (flag_value(argv[i], "--state-dir", &v)) {
      opts.state_dir = v;
    } else if (flag_value(argv[i], "--port", &v)) {
      opts.port = std::atoi(v);
    } else if (flag_value(argv[i], "--max-concurrent", &v)) {
      opts.max_concurrent = std::atoi(v);
    } else if (flag_value(argv[i], "--default-budget", &v)) {
      opts.default_budget = std::atoll(v);
    } else if (flag_value(argv[i], "--max-job-trials", &v)) {
      opts.max_job_trials = std::atoll(v);
    } else if (flag_value(argv[i], "--refresh", &v)) {
      opts.refresh_period = std::atoi(v);
    } else if (flag_value(argv[i], "--cross-refresh", &v)) {
      opts.cross_refresh = std::atoi(v);
    } else if (flag_value(argv[i], "--watch-interval", &v)) {
      opts.watch_interval_ms = std::atoi(v);
    } else if (flag_value(argv[i], "--port-file", &v)) {
      opts.port_file = v;
    } else if (std::strcmp(argv[i], "--replica") == 0) {
      opts.replica = true;
    } else if (flag_value(argv[i], "--value-model", &v)) {
      opts.value_model = v;
    } else if (flag_value(argv[i], "--beam-width", &v)) {
      opts.tuning.value_guide.beam_width = std::atoi(v);
    } else if (flag_value(argv[i], "--sample-clusters", &v)) {
      opts.tuning.value_guide.enabled = true;
      opts.tuning.value_guide.sample_clusters = std::atoi(v);
    } else if (std::strcmp(argv[i], "--no-golden") == 0) {
      opts.golden_advice = false;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      usage(stderr);
      return 2;
    }
  }
  if (opts.state_dir.empty()) {
    usage(stderr);
    return 2;
  }
  if (opts.max_concurrent < 1) opts.max_concurrent = 1;
  const bool server_is_replica = opts.replica;

  HarlServer server(std::move(opts));
  g_server = &server;
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);

  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "harl_serve: %s\n", error.c_str());
    return 1;
  }
  if (!quiet) {
    std::printf("harl_serve: %slistening on 127.0.0.1:%d\n",
                server_is_replica ? "replica " : "", server.port());
    ServerStats s = server.stats();
    if (s.jobs_resumed > 0) {
      std::printf("harl_serve: resumed %lld unfinished job(s) from the journal\n",
                  static_cast<long long>(s.jobs_resumed));
    }
    std::fflush(stdout);
  }

  server.serve_forever();

  if (!quiet) {
    ServerStats s = server.stats();
    std::printf(
        "harl_serve: drained (queries=%lld l1=%lld jobs done=%lld resumed=%lld)\n",
        static_cast<long long>(s.queries), static_cast<long long>(s.l1_hits),
        static_cast<long long>(s.jobs_completed),
        static_cast<long long>(s.jobs_resumed));
  }
  g_server = nullptr;
  return 0;
}
