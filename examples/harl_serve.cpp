/// Tuning-as-a-service daemon: serve schedule queries from per-hardware
/// knowledge caches in microseconds and run admitted tuning jobs on a shared
/// fleet pool, over a versioned line-JSON protocol on 127.0.0.1 (see
/// docs/PROTOCOL.md).  SIGTERM/SIGINT drain gracefully: running jobs
/// checkpoint at their next round boundary and a restarted daemon resumes
/// them bit-identically from the same state directory.
///
///   harl_serve --state-dir=DIR [--port=N] [--max-concurrent=N]
///              [--default-budget=N] [--max-job-trials=N] [--refresh=N]
///              [--value-model=PATH] [--beam-width=N] [--sample-clusters=N]
///              [--no-golden] [--quiet]
///
///   --state-dir=DIR       durable root: per-hardware record logs + caches,
///                         the jobs.jsonl journal, and the `port` file
///   --port=N              TCP port on 127.0.0.1 (default 0 = ephemeral;
///                         the chosen port is written to DIR/port)
///   --max-concurrent=N    tuning jobs run at once (default 2)
///   --default-budget=N    trial budget a new tenant starts with
///                         (default 100000; `hello` can raise it)
///   --max-job-trials=N    per-job trial cap at admission (default 10000)
///   --refresh=N           in-run experience refresh period in rounds
///                         (default 0 = off, keeping restart resume
///                         bit-identical)
///   --value-model=PATH    partial-schedule value model (harl_harvest value)
///                         shared by every admitted job; part of each job's
///                         run identity — a restarted daemon must pass the
///                         same model for bit-identical resume
///   --beam-width=N        value-guided beam width for admitted jobs
///                         (default 16; needs --value-model)
///   --sample-clusters=N   measure only N representative candidates per
///                         round, crediting the rest via the cost model
///                         (default 0 = off)
///   --no-golden           report misses instead of golden advice (L3)
///   --quiet               suppress the startup banner
///   --help                print usage and exit
///
/// Exit codes: 0 clean shutdown, 1 setup error, 2 usage error.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/harl.hpp"
#include "server/server.hpp"

namespace {

using namespace harl;

bool flag_value(const char* arg, const char* name, const char** value) {
  std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: harl_serve --state-dir=DIR [--port=N]\n"
               "                  [--max-concurrent=N] [--default-budget=N]\n"
               "                  [--max-job-trials=N] [--refresh=N]\n"
               "                  [--value-model=PATH] [--beam-width=N]\n"
               "                  [--sample-clusters=N]\n"
               "                  [--no-golden] [--quiet] [--help]\n");
}

HarlServer* g_server = nullptr;

/// Async-signal-safe: one atomic store; serve_forever() does the drain.
void handle_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions opts;
  opts.tuning = quick_options(PolicyKind::kHarl);
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (flag_value(argv[i], "--state-dir", &v)) {
      opts.state_dir = v;
    } else if (flag_value(argv[i], "--port", &v)) {
      opts.port = std::atoi(v);
    } else if (flag_value(argv[i], "--max-concurrent", &v)) {
      opts.max_concurrent = std::atoi(v);
    } else if (flag_value(argv[i], "--default-budget", &v)) {
      opts.default_budget = std::atoll(v);
    } else if (flag_value(argv[i], "--max-job-trials", &v)) {
      opts.max_job_trials = std::atoll(v);
    } else if (flag_value(argv[i], "--refresh", &v)) {
      opts.refresh_period = std::atoi(v);
    } else if (flag_value(argv[i], "--value-model", &v)) {
      opts.value_model = v;
    } else if (flag_value(argv[i], "--beam-width", &v)) {
      opts.tuning.value_guide.beam_width = std::atoi(v);
    } else if (flag_value(argv[i], "--sample-clusters", &v)) {
      opts.tuning.value_guide.enabled = true;
      opts.tuning.value_guide.sample_clusters = std::atoi(v);
    } else if (std::strcmp(argv[i], "--no-golden") == 0) {
      opts.golden_advice = false;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      usage(stderr);
      return 2;
    }
  }
  if (opts.state_dir.empty()) {
    usage(stderr);
    return 2;
  }
  if (opts.max_concurrent < 1) opts.max_concurrent = 1;

  HarlServer server(std::move(opts));
  g_server = &server;
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);

  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "harl_serve: %s\n", error.c_str());
    return 1;
  }
  if (!quiet) {
    std::printf("harl_serve: listening on 127.0.0.1:%d\n", server.port());
    ServerStats s = server.stats();
    if (s.jobs_resumed > 0) {
      std::printf("harl_serve: resumed %lld unfinished job(s) from the journal\n",
                  static_cast<long long>(s.jobs_resumed));
    }
    std::fflush(stdout);
  }

  server.serve_forever();

  if (!quiet) {
    ServerStats s = server.stats();
    std::printf(
        "harl_serve: drained (queries=%lld l1=%lld jobs done=%lld resumed=%lld)\n",
        static_cast<long long>(s.queries), static_cast<long long>(s.l1_hits),
        static_cast<long long>(s.jobs_completed),
        static_cast<long long>(s.jobs_resumed));
  }
  g_server = nullptr;
  return 0;
}
