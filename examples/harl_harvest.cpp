/// Experience tooling for record logs: turn the JSONL files tuning runs and
/// fleets write into reusable knowledge.
///
///   harl_harvest harvest --out=model.json [--hw=xeon|rtx3090]
///                [--trees=N] [--depth=N] [--histogram] [--seed=N]
///                LOG... [--dir=DIR]
///       Fold the logs into one training set (deterministic: same records in
///       any order produce the same model bytes) and pre-train a GBDT that
///       tune_network's model flag / `SearchOptions::experience_model` /
///       `FleetTuner::Options::experience_model` start warm from.
///
///   harl_harvest value --out=model.json [--hw=xeon|rtx3090]
///                [--trees=N] [--depth=N] [--histogram] [--seed=N]
///                LOG... [--dir=DIR]
///       Train the partial-schedule value model: label every decision prefix
///       of every logged schedule with the best final quality reachable from
///       it, and fit a GBDT over prefix features.  The output feeds
///       tune_network's value-model flag / `SearchOptions::value_guide` /
///       `FleetTuner::Options::value_model` for value-guided search.
///
///   harl_harvest compact --out=PATH [--best-k=N] [--window=N] LOG...
///       Keep each run's best-k records plus its most recent window, writing
///       the same schema (readers, resume, transfer, and harvesting accept
///       the compacted file transparently).
///
///   harl_harvest stats LOG... [--dir=DIR]
///       Per-(network, task, policy, seed) record counts and best times.
///
/// `--dir=DIR` adds every `*.jsonl` file in DIR (sorted) to the input list —
/// handy on a `FleetTuner::Options::log_dir`.  `--help` prints usage.

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/harl.hpp"

namespace {

using namespace harl;

bool flag_value(const char* arg, const char* name, const char** value) {
  std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

/// All *.jsonl files under `dir`, sorted for deterministic input order
/// (harvesting is order-independent anyway; compaction output order is not).
std::vector<std::string> jsonl_files(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    std::fprintf(stderr, "cannot open directory %s\n", dir.c_str());
    return out;
  }
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.size() > 6 && name.compare(name.size() - 6, 6, ".jsonl") == 0) {
      out.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

struct CommonArgs {
  std::vector<std::string> logs;
  std::string out;
  std::string hw_name = "xeon";
  GbdtConfig gbdt;
  CompactOptions compact;
  bool parsed_ok = true;
  bool help = false;
};

CommonArgs parse_args(int argc, char** argv, int first) {
  CommonArgs args;
  for (int i = first; i < argc; ++i) {
    const char* v = nullptr;
    if (flag_value(argv[i], "--out", &v)) {
      args.out = v;
    } else if (flag_value(argv[i], "--hw", &v)) {
      args.hw_name = v;
    } else if (flag_value(argv[i], "--trees", &v)) {
      args.gbdt.num_trees = std::atoi(v);
    } else if (flag_value(argv[i], "--depth", &v)) {
      args.gbdt.max_depth = std::atoi(v);
    } else if (flag_value(argv[i], "--seed", &v)) {
      args.gbdt.seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--histogram") == 0) {
      args.gbdt.split_mode = SplitMode::kHistogram;
    } else if (flag_value(argv[i], "--best-k", &v)) {
      args.compact.best_k = std::atoi(v);
    } else if (flag_value(argv[i], "--window", &v)) {
      args.compact.window = std::atoi(v);
    } else if (flag_value(argv[i], "--dir", &v)) {
      for (std::string& f : jsonl_files(v)) args.logs.push_back(std::move(f));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      args.help = true;
    } else if (argv[i][0] != '-') {
      args.logs.push_back(argv[i]);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      args.parsed_ok = false;
    }
  }
  return args;
}

HardwareConfig hardware_for(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "xeon" || name == "xeon_6226r") return HardwareConfig::xeon_6226r();
  if (name == "rtx3090" || name == "gpu") return HardwareConfig::rtx3090();
  if (name == "test") return HardwareConfig::test_config();
  std::fprintf(stderr, "unknown --hw=%s (xeon, rtx3090, test)\n", name.c_str());
  *ok = false;
  return HardwareConfig::test_config();
}

int cmd_harvest(const CommonArgs& args) {
  if (args.out.empty()) {
    std::fprintf(stderr, "harvest: --out=PATH is required\n");
    return 1;
  }
  bool hw_ok = false;
  HardwareConfig hw = hardware_for(args.hw_name, &hw_ok);
  if (!hw_ok) return 1;

  ExperienceStore store;
  for (const std::string& log : args.logs) {
    std::vector<RecordReadError> errors;
    std::size_t added = store.add_log(log, &errors);
    std::printf("  %-40s %zu records\n", log.c_str(), added);
    for (const RecordReadError& e : errors) {
      std::fprintf(stderr, "%s:%zu: skipped: %s\n", log.c_str(), e.line_number,
                   e.message.c_str());
    }
  }
  HarvestStats stats;
  Gbdt model = store.pretrain(hw, args.gbdt, make_builtin_resolver(), &stats);

  std::printf(
      "\nharvest: %zu records (%zu duplicate, %zu unknown-task, %zu invalid) "
      "-> %zu rows over %zu task groups; %zu malformed lines skipped\n",
      stats.records, stats.duplicates, stats.unknown_tasks,
      stats.invalid_schedules, stats.rows, stats.groups, stats.lines_skipped);
  if (!model.trained()) {
    std::fprintf(stderr, "harvest: not enough rows to train a model\n");
    return 1;
  }
  std::string error;
  if (!save_gbdt(model, args.out, &error)) {
    std::fprintf(stderr, "harvest: %s\n", error.c_str());
    return 1;
  }
  std::printf("model: %s (%d trees, %d nodes, target hw %s)\n", args.out.c_str(),
              model.num_trees_fit(), model.total_nodes(), hw.name.c_str());
  return 0;
}

int cmd_value(const CommonArgs& args) {
  if (args.out.empty()) {
    std::fprintf(stderr, "value: --out=PATH is required\n");
    return 1;
  }
  bool hw_ok = false;
  HardwareConfig hw = hardware_for(args.hw_name, &hw_ok);
  if (!hw_ok) return 1;

  ExperienceStore store;
  for (const std::string& log : args.logs) {
    std::vector<RecordReadError> errors;
    std::size_t added = store.add_log(log, &errors);
    std::printf("  %-40s %zu records\n", log.c_str(), added);
    for (const RecordReadError& e : errors) {
      std::fprintf(stderr, "%s:%zu: skipped: %s\n", log.c_str(), e.line_number,
                   e.message.c_str());
    }
  }
  HarvestStats stats;
  Gbdt model =
      store.pretrain_value(hw, args.gbdt, make_builtin_resolver(), &stats);

  std::printf(
      "\nvalue: %zu records (%zu duplicate, %zu unknown-task, %zu invalid) "
      "-> %zu prefix rows over %zu task groups; %zu malformed lines skipped\n",
      stats.records, stats.duplicates, stats.unknown_tasks,
      stats.invalid_schedules, stats.rows, stats.groups, stats.lines_skipped);
  if (!model.trained()) {
    std::fprintf(stderr, "value: not enough rows to train a model\n");
    return 1;
  }
  std::string error;
  if (!save_gbdt(model, args.out, &error)) {
    std::fprintf(stderr, "value: %s\n", error.c_str());
    return 1;
  }
  std::printf("value model: %s (%d trees, %d nodes, target hw %s)\n",
              args.out.c_str(), model.num_trees_fit(), model.total_nodes(),
              hw.name.c_str());
  return 0;
}

int cmd_compact(const CommonArgs& args) {
  if (args.out.empty()) {
    std::fprintf(stderr, "compact: --out=PATH is required\n");
    return 1;
  }
  // Merge every input, then compact once: best-k/window are per run
  // identity, so multi-log inputs fold correctly.
  std::vector<TuningRecord> records;
  std::size_t skipped = 0;
  for (const std::string& log : args.logs) {
    std::vector<RecordReadError> errors;
    std::vector<TuningRecord> r = read_records(log, &errors);
    skipped += errors.size();
    for (const RecordReadError& e : errors) {
      std::fprintf(stderr, "%s:%zu: skipped: %s\n", log.c_str(), e.line_number,
                   e.message.c_str());
    }
    for (TuningRecord& rec : r) records.push_back(std::move(rec));
  }
  CompactStats stats;
  std::vector<TuningRecord> kept = compact_records(records, args.compact, &stats);
  RecordWriter writer;
  if (!writer.open(args.out, /*append=*/false)) {
    std::fprintf(stderr, "compact: cannot write %s\n", args.out.c_str());
    return 1;
  }
  for (const TuningRecord& r : kept) {
    if (!writer.write(r)) {
      std::fprintf(stderr, "compact: short write to %s, output incomplete\n",
                   args.out.c_str());
      return 1;
    }
  }
  writer.flush();
  writer.close();
  std::printf(
      "compact: %zu -> %zu records over %zu run groups (best-k %d, window %d); "
      "%zu malformed lines skipped\n  %s\n",
      stats.records_in, stats.records_out, stats.groups, args.compact.best_k,
      args.compact.window, skipped, args.out.c_str());
  return 0;
}

int cmd_stats(const CommonArgs& args) {
  struct Group {
    std::size_t records = 0;
    std::size_t cached = 0;
    double best_ms = 0;
    std::int64_t max_trial = -1;
  };
  std::map<std::string, Group> groups;
  std::size_t total = 0, skipped = 0;
  for (const std::string& log : args.logs) {
    std::vector<RecordReadError> errors;
    for (const TuningRecord& r : read_records(log, &errors)) {
      ++total;
      std::string key = r.network + " / " + r.task + " / " + r.policy + " / s" +
                        std::to_string(r.seed);
      Group& g = groups[key];
      ++g.records;
      if (r.cached) ++g.cached;
      if (g.best_ms == 0 || r.time_ms < g.best_ms) g.best_ms = r.time_ms;
      g.max_trial = std::max(g.max_trial, r.trial_index);
    }
    skipped += errors.size();
    for (const RecordReadError& e : errors) {
      std::fprintf(stderr, "%s:%zu: skipped: %s\n", log.c_str(), e.line_number,
                   e.message.c_str());
    }
  }
  Table table("record log stats");
  table.set_header({"network / task / policy / seed", "records", "cached",
                    "best ms", "max trial"});
  for (const auto& [key, g] : groups) {
    table.add(key, g.records, g.cached, Table::fmt(g.best_ms, 4), g.max_trial);
  }
  table.print();
  std::printf("\n%zu records in %zu groups; %zu malformed lines skipped\n",
              total, groups.size(), skipped);
  return 0;
}

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: harl_harvest <harvest|value|compact|stats> [flags] LOG... "
      "[--dir=DIR]\n"
      "  harvest --out=model.json [--hw=xeon|rtx3090|test] [--trees=N]\n"
      "          [--depth=N] [--histogram] [--seed=N]\n"
      "  value   --out=model.json [--hw=xeon|rtx3090|test] [--trees=N]\n"
      "          [--depth=N] [--histogram] [--seed=N]\n"
      "  compact --out=PATH [--best-k=N] [--window=N]\n"
      "  stats\n"
      "  --dir=DIR adds every *.jsonl under DIR; --help prints usage\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  if (std::strcmp(argv[1], "--help") == 0) {
    usage(stdout);
    return 0;
  }
  CommonArgs args = parse_args(argc, argv, 2);
  if (!args.parsed_ok) return 2;
  if (args.help) {
    usage(stdout);
    return 0;
  }
  if (args.logs.empty()) {
    std::fprintf(stderr, "no input logs\n");
    return 2;
  }
  std::string cmd = argv[1];
  if (cmd == "harvest") return cmd_harvest(args);
  if (cmd == "value") return cmd_value(args);
  if (cmd == "compact") return cmd_compact(args);
  if (cmd == "stats") return cmd_stats(args);
  usage(stderr);
  return 2;
}
