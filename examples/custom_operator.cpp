/// Defining a custom operator through the public IR API.
///
/// Builds a batched MLP layer — Y[b,i,j] = act(sum_k X[b,i,k] * W[k,j] + B[j])
/// — as a two-stage subgraph (batched matmul + fusable bias/activation),
/// inspects the sketches HARL generates for it, and tunes it.
///
///   ./build/examples/example_custom_operator

#include <cstdio>

#include "core/harl.hpp"

int main() {
  using namespace harl;
  const std::int64_t batch = 8, rows = 64, in_dim = 256, out_dim = 128;

  // --- Stage 0: the batched matmul, described axis by axis -----------------
  TensorOp matmul;
  matmul.name = "mlp.matmul";
  matmul.kind = OpKind::kBatchGemm;
  matmul.flops_per_point = 2.0;  // multiply + add per reduction point
  matmul.axes = {{"b", batch, AxisKind::kSpatial},
                 {"i", rows, AxisKind::kSpatial},
                 {"j", out_dim, AxisKind::kSpatial},
                 {"k", in_dim, AxisKind::kReduction}};
  TensorAccess x;
  x.tensor_name = "X";  // X[b, i, k]
  x.dims = {DimExpr::of_axis(0), DimExpr::of_axis(1), DimExpr::of_axis(3)};
  TensorAccess w;
  w.tensor_name = "W";  // W[k, j] — shared across the batch (data reuse!)
  w.dims = {DimExpr::of_axis(3), DimExpr::of_axis(2)};
  matmul.inputs = {x, w};

  // --- Stage 1: bias + activation, elementwise over the matmul output -------
  TensorOp act;
  act.name = "mlp.bias_act";
  act.kind = OpKind::kElementwise;
  act.flops_per_point = 3.0;
  act.axes = {{"b", batch, AxisKind::kSpatial},
              {"i", rows, AxisKind::kSpatial},
              {"j", out_dim, AxisKind::kSpatial}};
  TensorAccess prev;
  prev.tensor_name = "mlp.matmul";
  prev.dims = {DimExpr::of_axis(0), DimExpr::of_axis(1), DimExpr::of_axis(2)};
  act.inputs = {prev};

  Stage s0;
  s0.op = matmul;
  s0.producer_of_input = {-1, -1};  // X and W are external tensors
  Stage s1;
  s1.op = act;
  s1.producer_of_input = {0};  // consumes stage 0
  Subgraph mlp("mlp_layer", {s0, s1});

  std::string err = mlp.validate();
  if (!err.empty()) {
    std::printf("subgraph invalid: %s\n", err.c_str());
    return 1;
  }

  // --- What does the sketch generator make of it? ---------------------------
  auto sketches = generate_sketches(mlp);
  std::printf("generated %zu sketches:\n", sketches.size());
  for (const Sketch& sk : sketches) {
    std::printf("  [%d] %-6s  stages:", sk.sketch_id, sk.tag.c_str());
    for (int s = 0; s < mlp.num_stages(); ++s) {
      std::printf(" %s=%s", mlp.stage(s).op.name.c_str(),
                  stage_structure_name(sk.plan(s).structure));
    }
    std::printf("\n");
  }

  // --- Tune it ---------------------------------------------------------------
  TuningSession session(mlp, HardwareConfig::xeon_6226r(),
                        quick_options(PolicyKind::kHarl));
  session.run(200);
  std::printf("\nbest simulated time: %.4f ms after %lld trials\n",
              session.task_best_ms(0),
              static_cast<long long>(session.measurer().trials_used()));
  std::printf("\nbest schedule:\n%s",
              session.scheduler().task(0).best_schedule().to_string().c_str());
  return 0;
}
