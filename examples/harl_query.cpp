/// Zero-search serving front end: answer "best schedule for this task on
/// this hardware" from a knowledge cache, without spinning up a tuning
/// session.
///
///   harl_query --task=NETWORK/SUBGRAPH [--hw=xeon|rtx3090|test]
///              [--cache=FILE] [--logs=LOG]... [--dir=DIR] [--model=FILE]
///              [--save-cache=FILE] [--topk=N] [--repeat=N]
///              [--tier-stats] [--expect-best] [--no-golden]
///       Load the cache file (if given), fold in the record logs, optionally
///       attach a pretrained GBDT for L2 re-ranking, and serve the query:
///       L1 = exact (network, task, hardware) best rebuilt from its record,
///       L2 = structural near-miss adapted to the query shape,
///       L3 = deterministic golden-advice default on a cold miss.
///
///   --task=NETWORK/SUBGRAPH  what to serve, e.g. bert_b1/GEMM-I (builtin
///                            workload names; see harl_harvest stats)
///   --hw=NAME          target hardware preset (default xeon)
///   --cache=FILE       knowledge-cache JSON to load before the logs
///   --logs=LOG         a tuning log to fold in (repeatable)
///   --dir=DIR          fold in every *.jsonl under DIR (sorted)
///   --model=FILE       pretrained GBDT re-ranking L2 candidates
///   --save-cache=FILE  write the folded cache back out (atomic) and, with
///                      no --task, exit after building it
///   --topk=N           records kept per (network, task, hardware) entry
///   --repeat=N         serve N times and report the median latency
///   --tier-stats       print the cache's tier hit counters
///   --expect-best      verify the answer is an L1 hit whose record is
///                      byte-identical to the best log record (exit 6 when
///                      not — the CI round-trip gate)
///   --no-golden        report a miss instead of golden advice on cold tasks
///   --help             print usage and exit
///
/// Exit codes: 0 served, 1 setup error, 2 usage error, 6 --expect-best
/// mismatch.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/harl.hpp"
#include "serve/knowledge_cache.hpp"

#include <dirent.h>

namespace {

using namespace harl;

bool flag_value(const char* arg, const char* name, const char** value) {
  std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

std::vector<std::string> jsonl_files(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    std::fprintf(stderr, "cannot open directory %s\n", dir.c_str());
    return out;
  }
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.size() > 6 && name.compare(name.size() - 6, 6, ".jsonl") == 0) {
      out.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

HardwareConfig hardware_for(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "xeon" || name == "xeon_6226r") return HardwareConfig::xeon_6226r();
  if (name == "rtx3090" || name == "gpu") return HardwareConfig::rtx3090();
  if (name == "test") return HardwareConfig::test_config();
  std::fprintf(stderr, "unknown --hw=%s (xeon, rtx3090, test)\n", name.c_str());
  *ok = false;
  return HardwareConfig::test_config();
}

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: harl_query --task=NETWORK/SUBGRAPH [--hw=xeon|rtx3090|test]\n"
      "                  [--cache=FILE] [--logs=LOG]... [--dir=DIR]\n"
      "                  [--model=FILE] [--save-cache=FILE] [--topk=N]\n"
      "                  [--repeat=N] [--tier-stats] [--expect-best]\n"
      "                  [--no-golden] [--help]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string task_spec, hw_name = "xeon", cache_path, model_path, save_path;
  std::vector<std::string> logs;
  int topk = 0, repeat = 1;
  bool tier_stats = false, expect_best = false, no_golden = false;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (flag_value(argv[i], "--task", &v)) {
      task_spec = v;
    } else if (flag_value(argv[i], "--hw", &v)) {
      hw_name = v;
    } else if (flag_value(argv[i], "--cache", &v)) {
      cache_path = v;
    } else if (flag_value(argv[i], "--logs", &v)) {
      logs.push_back(v);
    } else if (flag_value(argv[i], "--dir", &v)) {
      for (std::string& f : jsonl_files(v)) logs.push_back(std::move(f));
    } else if (flag_value(argv[i], "--model", &v)) {
      model_path = v;
    } else if (flag_value(argv[i], "--save-cache", &v)) {
      save_path = v;
    } else if (flag_value(argv[i], "--topk", &v)) {
      topk = std::atoi(v);
    } else if (flag_value(argv[i], "--repeat", &v)) {
      repeat = std::atoi(v);
    } else if (std::strcmp(argv[i], "--tier-stats") == 0) {
      tier_stats = true;
    } else if (std::strcmp(argv[i], "--expect-best") == 0) {
      expect_best = true;
    } else if (std::strcmp(argv[i], "--no-golden") == 0) {
      no_golden = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      usage(stderr);
      return 2;
    }
  }
  if (task_spec.empty() && save_path.empty()) {
    usage(stderr);
    return 2;
  }

  bool hw_ok = false;
  HardwareConfig hw = hardware_for(hw_name, &hw_ok);
  if (!hw_ok) return 1;

  KnowledgeCacheOptions opts;
  if (topk > 0) opts.top_k = topk;
  opts.golden_advice = !no_golden;
  KnowledgeCache cache(opts);

  if (!cache_path.empty()) {
    std::string error;
    if (!load_cache(cache_path, &cache, &error)) {
      std::fprintf(stderr, "cannot load cache %s: %s\n", cache_path.c_str(),
                   error.c_str());
      return 1;
    }
    std::printf("cache: %s (%zu entries, %zu records, fp %llu)\n",
                cache_path.c_str(), cache.num_entries(), cache.num_records(),
                static_cast<unsigned long long>(cache_fingerprint(cache)));
  }
  for (const std::string& log : logs) {
    // Fold record by record instead of insert_log, so malformed lines get a
    // path:line diagnostic here (the cache itself rejects failed records).
    std::vector<RecordReadError> errors;
    std::size_t added = 0;
    for (const TuningRecord& rec : read_records(log, &errors)) {
      if (cache.insert(rec)) ++added;
    }
    std::printf("  %-40s +%zu records\n", log.c_str(), added);
    for (const RecordReadError& e : errors) {
      std::fprintf(stderr, "%s:%zu: skipped: %s\n", log.c_str(), e.line_number,
                   e.message.c_str());
    }
  }
  if (!model_path.empty()) {
    auto model = std::make_shared<Gbdt>();
    std::string error;
    if (!load_gbdt(model_path, model.get(), &error)) {
      std::fprintf(stderr, "cannot load model %s: %s\n", model_path.c_str(),
                   error.c_str());
      return 1;
    }
    cache.set_model(std::move(model));
  }
  if (!save_path.empty()) {
    std::string error;
    if (!save_cache(cache, save_path, &error)) {
      std::fprintf(stderr, "cannot save cache %s: %s\n", save_path.c_str(),
                   error.c_str());
      return 1;
    }
    std::printf("cache saved: %s (%zu entries, %zu records, fp %llu)\n",
                save_path.c_str(), cache.num_entries(), cache.num_records(),
                static_cast<unsigned long long>(cache_fingerprint(cache)));
    if (task_spec.empty()) return 0;
  }

  std::size_t slash = task_spec.find('/');
  if (slash == std::string::npos || slash == 0 ||
      slash + 1 >= task_spec.size()) {
    std::fprintf(stderr, "--task wants NETWORK/SUBGRAPH, got \"%s\"\n",
                 task_spec.c_str());
    return 2;
  }
  std::string net_name = task_spec.substr(0, slash);
  std::string sub_name = task_spec.substr(slash + 1);
  TaskResolver resolver = make_builtin_resolver();
  const Subgraph* graph = resolver(net_name, sub_name);
  if (graph == nullptr) {
    std::fprintf(stderr, "unknown task %s/%s (builtin workloads only)\n",
                 net_name.c_str(), sub_name.c_str());
    return 1;
  }

  if (repeat < 1) repeat = 1;
  ServeResult result;
  std::vector<double> micros;
  micros.reserve(static_cast<std::size_t>(repeat));
  for (int r = 0; r < repeat; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    result = cache.serve(net_name, *graph, hw);
    auto t1 = std::chrono::steady_clock::now();
    micros.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }

  std::printf("query: %s/%s on %s (fp %llu)\n", net_name.c_str(),
              sub_name.c_str(), hw.name.c_str(),
              static_cast<unsigned long long>(hw.fingerprint()));
  std::printf("tier: %s\n", serve_tier_name(result.tier));
  if (result.tier == ServeTier::kMiss) {
    std::printf("no knowledge for this task; run a tuning session\n");
  } else {
    std::printf("schedule fingerprint: %llu\n",
                static_cast<unsigned long long>(result.schedule.fingerprint()));
    if (result.tier != ServeTier::kL3) {
      std::printf("score: %s\n", json::format_double(result.score).c_str());
      std::printf("est_time_ms: %s\n",
                  json::format_double(result.est_time_ms).c_str());
      std::printf("record: %s\n", record_to_json(result.record).c_str());
    }
    std::printf("schedule:\n%s", result.schedule.to_string().c_str());
  }
  std::sort(micros.begin(), micros.end());
  std::printf("lookup: median %.1f us over %d repeat(s)\n",
              micros[micros.size() / 2], repeat);

  if (tier_stats) {
    ServeStats s = cache.stats();
    std::printf(
        "tier stats: queries=%zu l1=%zu l2=%zu l3=%zu miss=%zu inserts=%zu "
        "duplicates=%zu evictions=%zu rejected=%zu\n",
        s.queries, s.l1_hits, s.l2_hits, s.l3_hits, s.misses, s.inserts,
        s.duplicates, s.evictions, s.rejected);
  }

  if (expect_best) {
    // The CI round-trip contract: the answer must be an L1 hit whose record
    // is byte-identical to the best record the logs hold for this triple.
    if (result.tier != ServeTier::kL1) {
      std::fprintf(stderr, "expect-best: answer came from %s, not L1\n",
                   serve_tier_name(result.tier));
      return 6;
    }
    std::string best;  // minimum under (time_ms asc, serialized asc)
    double best_time = 0;
    const std::uint64_t hw_fp = hw.fingerprint();
    for (const std::string& log : logs) {
      for (const TuningRecord& rec : read_records(log)) {
        if (rec.network != net_name || rec.task != sub_name ||
            rec.hardware_fp != hw_fp || !(rec.time_ms > 0)) {
          continue;
        }
        std::string line = record_to_json(rec);
        if (best.empty() || rec.time_ms < best_time ||
            (rec.time_ms == best_time && line < best)) {
          best_time = rec.time_ms;
          best = std::move(line);
        }
      }
    }
    if (best.empty()) {
      std::fprintf(stderr, "expect-best: the logs hold no record for %s/%s\n",
                   net_name.c_str(), sub_name.c_str());
      return 6;
    }
    if (record_to_json(result.record) != best) {
      std::fprintf(stderr,
                   "expect-best: served record differs from the log best\n"
                   "  served: %s\n  best:   %s\n",
                   record_to_json(result.record).c_str(), best.c_str());
      return 6;
    }
    std::printf("expect-best: L1 bit-identity OK\n");
  }
  return 0;
}
