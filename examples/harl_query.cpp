/// Zero-search serving front end: answer "best schedule for this task on
/// this hardware" from a knowledge cache, without spinning up a tuning
/// session — locally from cache/log files, or remotely from a running
/// harl_serve daemon over its line-JSON protocol (docs/PROTOCOL.md).
///
///   harl_query --task=NETWORK/SUBGRAPH [--hw=xeon|rtx3090|test]
///              [--cache=FILE] [--logs=LOG]... [--dir=DIR] [--model=FILE]
///              [--save-cache=FILE] [--topk=N] [--repeat=N]
///              [--tier-stats] [--expect-best] [--no-golden]
///       Local mode: load the cache file (if given), fold in the record
///       logs, optionally attach a pretrained GBDT for L2 re-ranking, and
///       serve the query:
///       L1 = exact (network, task, hardware) best rebuilt from its record,
///       L2 = structural near-miss adapted to the query shape,
///       L3 = deterministic golden-advice default on a cold miss.
///
///   harl_query --connect=HOST:PORT [--tenant=NAME] [--budget=N]
///              [--weight=W] [--task=NETWORK/SUBGRAPH] [--tune=NETWORK]
///              [--batch=N] [--trials=N] [--seed=N] [--policy=NAME] [--wait]
///              [--watch=JOB] [--status=JOB] [--stats] [--tier-stats]
///              [--shutdown]
///       Client mode: talk to a harl_serve daemon (--connect=PORT implies
///       host 127.0.0.1).  Queries print the same tier/record lines as
///       local mode; tuning requests are admitted against the tenant's
///       trial budget and can be streamed to completion.
///
///   --task=NETWORK/SUBGRAPH  what to serve, e.g. bert_b1/GEMM-I (builtin
///                            workload names; see harl_harvest stats)
///   --hw=NAME          target hardware preset (default xeon)
///   --cache=FILE       knowledge-cache JSON to load before the logs
///   --logs=LOG         a tuning log to fold in (repeatable); with
///                      --connect, the reference logs for --expect-best
///   --dir=DIR          fold in every *.jsonl under DIR (sorted)
///   --model=FILE       pretrained GBDT re-ranking L2 candidates
///   --save-cache=FILE  write the folded cache back out (atomic) and, with
///                      no --task, exit after building it
///   --topk=N           records kept per (network, task, hardware) entry
///   --repeat=N         serve N times and report the median latency
///   --tier-stats       print tier hit + freshness counters — the local
///                      cache's, or with --connect the server's (queries,
///                      per-tier hits, cache refreshes, best-entry
///                      invalidations, replica hot-reloads)
///   --expect-best      verify the answer is an L1 hit whose record is
///                      byte-identical to the best log record (exit 6 when
///                      not — the CI round-trip gate; works remotely too)
///   --no-golden        report a miss instead of golden advice on cold tasks
///   --connect=HOST:PORT  client mode: the daemon to talk to (PORT alone
///                        means 127.0.0.1:PORT)
///   --tenant=NAME      tenant to act as (default "default")
///   --budget=N         hello: set/raise the tenant's trial budget
///   --weight=W         hello: set the tenant's fair-queue weight (> 0;
///                      dispatch shares under overload are weight-
///                      proportional, default 1.0)
///   --tune=NETWORK     admit a tuning job for this base network
///   --batch=N          batch size of the tuned network (default 1)
///   --trials=N         measurement-trial budget of the job
///   --seed=N           job seed — part of its deterministic run identity
///   --policy=NAME      search policy for the job (harl, random, ...)
///   --wait             after --tune, stream round events until the job ends
///   --watch=JOB        stream an existing job's events until it ends
///   --status=JOB       print one job's state and result summary
///   --stats            print server-wide counters
///   --shutdown         ask the daemon to drain and exit
///   --help             print usage and exit
///
/// Exit codes: 0 served, 1 setup/remote error, 2 usage error, 4 watched job
/// stopped without completing, 6 --expect-best mismatch.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/harl.hpp"
#include "serve/knowledge_cache.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"

#include <dirent.h>

namespace {

using namespace harl;

bool flag_value(const char* arg, const char* name, const char** value) {
  std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

std::vector<std::string> jsonl_files(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    std::fprintf(stderr, "cannot open directory %s\n", dir.c_str());
    return out;
  }
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.size() > 6 && name.compare(name.size() - 6, 6, ".jsonl") == 0) {
      out.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

HardwareConfig hardware_for(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "xeon" || name == "xeon_6226r") return HardwareConfig::xeon_6226r();
  if (name == "rtx3090" || name == "gpu") return HardwareConfig::rtx3090();
  if (name == "test") return HardwareConfig::test_config();
  std::fprintf(stderr, "unknown --hw=%s (xeon, rtx3090, test)\n", name.c_str());
  *ok = false;
  return HardwareConfig::test_config();
}

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: harl_query --task=NETWORK/SUBGRAPH [--hw=xeon|rtx3090|test]\n"
      "                  [--cache=FILE] [--logs=LOG]... [--dir=DIR]\n"
      "                  [--model=FILE] [--save-cache=FILE] [--topk=N]\n"
      "                  [--repeat=N] [--tier-stats] [--expect-best]\n"
      "                  [--no-golden] [--help]\n"
      "       harl_query --connect=HOST:PORT [--tenant=NAME] [--budget=N]\n"
      "                  [--weight=W] [--task=NETWORK/SUBGRAPH]\n"
      "                  [--tune=NETWORK] [--batch=N] [--trials=N] [--seed=N]\n"
      "                  [--policy=NAME] [--wait] [--watch=JOB] [--status=JOB]\n"
      "                  [--stats] [--tier-stats] [--shutdown]\n");
}

/// The minimum record under (time_ms asc, serialized asc) the logs hold for
/// this (network, task, hardware) triple — the --expect-best reference.
std::string best_log_record(const std::vector<std::string>& logs,
                            const std::string& net_name,
                            const std::string& sub_name,
                            std::uint64_t hw_fp) {
  std::string best;
  double best_time = 0;
  for (const std::string& log : logs) {
    for (const TuningRecord& rec : read_records(log)) {
      if (rec.network != net_name || rec.task != sub_name ||
          rec.hardware_fp != hw_fp || !(rec.time_ms > 0)) {
        continue;
      }
      std::string line = record_to_json(rec);
      if (best.empty() || rec.time_ms < best_time ||
          (rec.time_ms == best_time && line < best)) {
        best_time = rec.time_ms;
        best = std::move(line);
      }
    }
  }
  return best;
}

/// Byte-identity gate shared by local and remote --expect-best: the served
/// answer must be L1 and its record must equal the best log record.
int check_expect_best(const std::vector<std::string>& logs,
                      const std::string& net_name, const std::string& sub_name,
                      std::uint64_t hw_fp, const std::string& tier,
                      const std::string& served_record) {
  if (tier != "L1") {
    std::fprintf(stderr, "expect-best: answer came from %s, not L1\n",
                 tier.c_str());
    return 6;
  }
  std::string best = best_log_record(logs, net_name, sub_name, hw_fp);
  if (best.empty()) {
    std::fprintf(stderr, "expect-best: the logs hold no record for %s/%s\n",
                 net_name.c_str(), sub_name.c_str());
    return 6;
  }
  if (served_record != best) {
    std::fprintf(stderr,
                 "expect-best: served record differs from the log best\n"
                 "  served: %s\n  best:   %s\n",
                 served_record.c_str(), best.c_str());
    return 6;
  }
  std::printf("expect-best: L1 bit-identity OK\n");
  return 0;
}

// ---------------------------------------------------------------------------
// Remote (client) mode
// ---------------------------------------------------------------------------

struct RemoteArgs {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string tenant;
  std::int64_t budget = -1;
  double weight = 0;
  std::string task_spec;
  std::string hw = "xeon";
  std::string tune_network;
  std::int64_t batch = 1;
  std::int64_t trials = 0;
  std::uint64_t seed = 42;
  std::string policy;
  bool wait = false;
  std::int64_t watch_job = -1;
  std::int64_t status_job = -1;
  bool stats = false;
  bool tier_stats = false;
  bool do_shutdown = false;
  int repeat = 1;
  bool expect_best = false;
  std::vector<std::string> logs;
};

/// One request/reply round trip; prints a diagnostic and returns false on a
/// transport or protocol failure, or an error reply.
bool remote_call(LineClient& cli, const Request& req, Response* resp) {
  std::string err, line;
  if (!cli.send_line(request_to_json(req), &err) ||
      !cli.recv_line(&line, &err)) {
    std::fprintf(stderr, "remote: %s\n", err.c_str());
    return false;
  }
  if (!response_from_json(line, resp, &err)) {
    std::fprintf(stderr, "remote: bad reply: %s\n", err.c_str());
    return false;
  }
  if (!resp->ok && resp->event.empty()) {
    std::fprintf(stderr, "remote: %s\n", resp->error.c_str());
    return false;
  }
  return true;
}

/// Stream a job's round/best events until its terminal "done" event.
int remote_watch(LineClient& cli, std::int64_t job) {
  Request req;
  req.type = RequestType::kSubscribe;
  req.job = job;
  std::string err;
  if (!cli.send_line(request_to_json(req), &err)) {
    std::fprintf(stderr, "remote: %s\n", err.c_str());
    return 1;
  }
  for (;;) {
    std::string line;
    if (!cli.recv_line(&line, &err, 600000)) {
      std::fprintf(stderr, "remote: %s\n", err.c_str());
      return 1;
    }
    Response ev;
    if (!response_from_json(line, &ev, &err)) {
      std::fprintf(stderr, "remote: bad event: %s\n", err.c_str());
      return 1;
    }
    if (!ev.ok) {
      std::fprintf(stderr, "remote: %s\n", ev.error.c_str());
      return 1;
    }
    if (ev.event == "round") {
      std::printf("job %lld round %lld  task=%s trials=%lld",
                  static_cast<long long>(ev.job),
                  static_cast<long long>(ev.round), ev.task.c_str(),
                  static_cast<long long>(ev.trials_after));
      if (ev.net_latency_ms >= 0) {
        std::printf("  net latency %s ms",
                    json::format_double(ev.net_latency_ms).c_str());
      }
      std::printf("\n");
    } else if (ev.event == "best") {
      std::printf("job %lld new best  task=%s %s ms",
                  static_cast<long long>(ev.job), ev.task.c_str(),
                  json::format_double(ev.est_time_ms).c_str());
      if (ev.net_latency_ms >= 0) {
        std::printf("  net latency %s ms",
                    json::format_double(ev.net_latency_ms).c_str());
      }
      std::printf("\n");
    } else if (ev.event == "done") {
      std::printf("job %lld %s", static_cast<long long>(ev.job),
                  ev.state.c_str());
      if (ev.trials_used >= 0) {
        std::printf("  trials_used=%lld", static_cast<long long>(ev.trials_used));
      }
      if (ev.latency_ms >= 0) {
        std::printf("  net latency %s ms",
                    json::format_double(ev.latency_ms).c_str());
      }
      std::printf("\n");
      std::fflush(stdout);
      return ev.state == "done" ? 0 : 4;
    }
    std::fflush(stdout);
  }
}

int remote_main(const RemoteArgs& args) {
  LineClient cli;
  std::string err;
  if (!cli.connect(args.host, args.port, &err)) {
    std::fprintf(stderr, "remote: %s\n", err.c_str());
    return 1;
  }

  if (!args.tenant.empty() || args.budget >= 0 || args.weight > 0) {
    Request req;
    req.type = RequestType::kHello;
    req.tenant = args.tenant.empty() ? "default" : args.tenant;
    req.budget = args.budget;
    req.weight = args.weight;
    Response resp;
    if (!remote_call(cli, req, &resp)) return 1;
  }

  if (args.stats || args.tier_stats) {
    Request req;
    req.type = RequestType::kStats;
    Response r;
    if (!remote_call(cli, req, &r)) return 1;
    if (args.stats) {
      std::printf(
          "server stats: queries=%lld l1=%lld l2=%lld l3=%lld miss=%lld\n"
          "jobs: admitted=%lld rejected=%lld completed=%lld resumed=%lld "
          "tenants=%lld\n",
          static_cast<long long>(r.queries), static_cast<long long>(r.l1_hits),
          static_cast<long long>(r.l2_hits), static_cast<long long>(r.l3_hits),
          static_cast<long long>(r.misses),
          static_cast<long long>(r.jobs_admitted),
          static_cast<long long>(r.jobs_rejected),
          static_cast<long long>(r.jobs_completed),
          static_cast<long long>(r.jobs_resumed),
          static_cast<long long>(r.tenants));
    }
    if (args.tier_stats) {
      // The server-side twin of local --tier-stats: tier hits plus the
      // freshness counters (publishes, retired bests, replica hot-reloads).
      std::printf(
          "tier stats: queries=%lld l1=%lld l2=%lld l3=%lld miss=%lld "
          "refreshes=%lld invalidations=%lld reloads=%lld role=%s\n",
          static_cast<long long>(r.queries), static_cast<long long>(r.l1_hits),
          static_cast<long long>(r.l2_hits), static_cast<long long>(r.l3_hits),
          static_cast<long long>(r.misses),
          static_cast<long long>(r.refreshes),
          static_cast<long long>(r.invalidations),
          static_cast<long long>(r.reloads),
          r.role.empty() ? "?" : r.role.c_str());
    }
  }

  if (args.status_job >= 0) {
    Request req;
    req.type = RequestType::kStatus;
    req.job = args.status_job;
    Response r;
    if (!remote_call(cli, req, &r)) return 1;
    std::printf("job %lld %s", static_cast<long long>(r.job), r.state.c_str());
    if (r.trials_used >= 0) {
      std::printf("  trials_used=%lld", static_cast<long long>(r.trials_used));
    }
    if (r.latency_ms >= 0) {
      std::printf("  net latency %s ms",
                  json::format_double(r.latency_ms).c_str());
    }
    std::printf("\n");
  }

  if (!args.tune_network.empty()) {
    Request req;
    req.type = RequestType::kTune;
    req.tenant = args.tenant.empty() ? "default" : args.tenant;
    req.network = args.tune_network;
    req.batch = args.batch;
    req.trials = args.trials;
    req.seed = args.seed;
    req.policy = args.policy;
    req.hw = args.hw;
    Response r;
    if (!remote_call(cli, req, &r)) return 1;
    std::printf("job %lld admitted (%s)\n", static_cast<long long>(r.job),
                r.state.c_str());
    std::fflush(stdout);
    if (args.wait) return remote_watch(cli, r.job);
  }

  if (args.watch_job >= 0) {
    int rc = remote_watch(cli, args.watch_job);
    if (rc != 0) return rc;
  }

  if (!args.task_spec.empty()) {
    std::size_t slash = args.task_spec.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= args.task_spec.size()) {
      std::fprintf(stderr, "--task wants NETWORK/SUBGRAPH, got \"%s\"\n",
                   args.task_spec.c_str());
      return 2;
    }
    std::string net_name = args.task_spec.substr(0, slash);
    std::string sub_name = args.task_spec.substr(slash + 1);
    Request req;
    req.type = RequestType::kQuery;
    req.network = net_name;
    req.task = sub_name;
    req.hw = args.hw;
    int repeat = args.repeat < 1 ? 1 : args.repeat;
    Response r;
    std::vector<double> micros;
    micros.reserve(static_cast<std::size_t>(repeat));
    for (int i = 0; i < repeat; ++i) {
      auto t0 = std::chrono::steady_clock::now();
      if (!remote_call(cli, req, &r)) return 1;
      auto t1 = std::chrono::steady_clock::now();
      micros.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
    std::printf("query: %s/%s on %s (remote %s:%d)\n", net_name.c_str(),
                sub_name.c_str(), args.hw.c_str(), args.host.c_str(),
                args.port);
    std::printf("tier: %s\n", r.tier.c_str());
    if (r.tier == "miss") {
      std::printf("no knowledge for this task; submit a tune request\n");
    } else {
      std::printf("schedule fingerprint: %llu\n",
                  static_cast<unsigned long long>(r.schedule_fp));
      if (r.score >= 0) {
        std::printf("score: %s\n", json::format_double(r.score).c_str());
      }
      if (r.est_time_ms >= 0) {
        std::printf("est_time_ms: %s\n",
                    json::format_double(r.est_time_ms).c_str());
      }
      if (!r.record.empty()) std::printf("record: %s\n", r.record.c_str());
    }
    std::sort(micros.begin(), micros.end());
    std::printf("lookup: server %s us, round-trip median %.1f us over %d "
                "repeat(s)\n",
                r.serve_us >= 0 ? json::format_double(r.serve_us).c_str() : "?",
                micros[micros.size() / 2], repeat);
    if (args.expect_best) {
      bool hw_ok = false;
      HardwareConfig hw = hardware_for(args.hw, &hw_ok);
      if (!hw_ok) return 1;
      if (args.logs.empty()) {
        std::fprintf(stderr,
                     "expect-best: remote mode needs --logs/--dir pointing at "
                     "the daemon's record logs\n");
        return 6;
      }
      return check_expect_best(args.logs, net_name, sub_name, hw.fingerprint(),
                               r.tier, r.record);
    }
  }

  if (args.do_shutdown) {
    Request req;
    req.type = RequestType::kShutdown;
    Response r;
    if (!remote_call(cli, req, &r)) return 1;
    std::printf("shutdown acknowledged\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string task_spec, hw_name = "xeon", cache_path, model_path, save_path;
  std::vector<std::string> logs;
  int topk = 0, repeat = 1;
  bool tier_stats = false, expect_best = false, no_golden = false;
  std::string connect_spec;
  RemoteArgs remote;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (flag_value(argv[i], "--task", &v)) {
      task_spec = v;
    } else if (flag_value(argv[i], "--hw", &v)) {
      hw_name = v;
    } else if (flag_value(argv[i], "--cache", &v)) {
      cache_path = v;
    } else if (flag_value(argv[i], "--logs", &v)) {
      logs.push_back(v);
    } else if (flag_value(argv[i], "--dir", &v)) {
      for (std::string& f : jsonl_files(v)) logs.push_back(std::move(f));
    } else if (flag_value(argv[i], "--model", &v)) {
      model_path = v;
    } else if (flag_value(argv[i], "--save-cache", &v)) {
      save_path = v;
    } else if (flag_value(argv[i], "--topk", &v)) {
      topk = std::atoi(v);
    } else if (flag_value(argv[i], "--repeat", &v)) {
      repeat = std::atoi(v);
    } else if (std::strcmp(argv[i], "--tier-stats") == 0) {
      tier_stats = true;
    } else if (std::strcmp(argv[i], "--expect-best") == 0) {
      expect_best = true;
    } else if (std::strcmp(argv[i], "--no-golden") == 0) {
      no_golden = true;
    } else if (flag_value(argv[i], "--connect", &v)) {
      connect_spec = v;
    } else if (flag_value(argv[i], "--tenant", &v)) {
      remote.tenant = v;
    } else if (flag_value(argv[i], "--budget", &v)) {
      remote.budget = std::atoll(v);
    } else if (flag_value(argv[i], "--weight", &v)) {
      remote.weight = std::atof(v);
    } else if (flag_value(argv[i], "--tune", &v)) {
      remote.tune_network = v;
    } else if (flag_value(argv[i], "--batch", &v)) {
      remote.batch = std::atoll(v);
    } else if (flag_value(argv[i], "--trials", &v)) {
      remote.trials = std::atoll(v);
    } else if (flag_value(argv[i], "--seed", &v)) {
      remote.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (flag_value(argv[i], "--policy", &v)) {
      remote.policy = v;
    } else if (std::strcmp(argv[i], "--wait") == 0) {
      remote.wait = true;
    } else if (flag_value(argv[i], "--watch", &v)) {
      remote.watch_job = std::atoll(v);
    } else if (flag_value(argv[i], "--status", &v)) {
      remote.status_job = std::atoll(v);
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      remote.stats = true;
    } else if (std::strcmp(argv[i], "--shutdown") == 0) {
      remote.do_shutdown = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      usage(stderr);
      return 2;
    }
  }

  if (!connect_spec.empty()) {
    std::size_t colon = connect_spec.find(':');
    if (colon == std::string::npos) {
      remote.port = std::atoi(connect_spec.c_str());
    } else {
      remote.host = connect_spec.substr(0, colon);
      remote.port = std::atoi(connect_spec.c_str() + colon + 1);
    }
    if (remote.port <= 0) {
      std::fprintf(stderr, "--connect wants HOST:PORT or PORT, got \"%s\"\n",
                   connect_spec.c_str());
      return 2;
    }
    remote.task_spec = task_spec;
    remote.hw = hw_name;
    remote.repeat = repeat;
    remote.expect_best = expect_best;
    remote.tier_stats = tier_stats;
    remote.logs = logs;
    return remote_main(remote);
  }
  if (!remote.tune_network.empty() || remote.watch_job >= 0 ||
      remote.status_job >= 0 || remote.stats || remote.do_shutdown ||
      remote.weight > 0) {
    std::fprintf(stderr, "that flag needs --connect=HOST:PORT\n");
    return 2;
  }
  if (task_spec.empty() && save_path.empty()) {
    usage(stderr);
    return 2;
  }

  bool hw_ok = false;
  HardwareConfig hw = hardware_for(hw_name, &hw_ok);
  if (!hw_ok) return 1;

  KnowledgeCacheOptions opts;
  if (topk > 0) opts.top_k = topk;
  opts.golden_advice = !no_golden;
  KnowledgeCache cache(opts);

  if (!cache_path.empty()) {
    std::string error;
    if (!load_cache(cache_path, &cache, &error)) {
      std::fprintf(stderr, "cannot load cache %s: %s\n", cache_path.c_str(),
                   error.c_str());
      return 1;
    }
    std::printf("cache: %s (%zu entries, %zu records, fp %llu)\n",
                cache_path.c_str(), cache.num_entries(), cache.num_records(),
                static_cast<unsigned long long>(cache_fingerprint(cache)));
  }
  for (const std::string& log : logs) {
    // Fold record by record instead of insert_log, so malformed lines get a
    // path:line diagnostic here (the cache itself rejects failed records).
    std::vector<RecordReadError> errors;
    std::size_t added = 0;
    for (const TuningRecord& rec : read_records(log, &errors)) {
      if (cache.insert(rec)) ++added;
    }
    std::printf("  %-40s +%zu records\n", log.c_str(), added);
    for (const RecordReadError& e : errors) {
      std::fprintf(stderr, "%s:%zu: skipped: %s\n", log.c_str(), e.line_number,
                   e.message.c_str());
    }
  }
  if (!model_path.empty()) {
    auto model = std::make_shared<Gbdt>();
    std::string error;
    if (!load_gbdt(model_path, model.get(), &error)) {
      std::fprintf(stderr, "cannot load model %s: %s\n", model_path.c_str(),
                   error.c_str());
      return 1;
    }
    cache.set_model(std::move(model));
  }
  if (!save_path.empty()) {
    std::string error;
    if (!save_cache(cache, save_path, &error)) {
      std::fprintf(stderr, "cannot save cache %s: %s\n", save_path.c_str(),
                   error.c_str());
      return 1;
    }
    std::printf("cache saved: %s (%zu entries, %zu records, fp %llu)\n",
                save_path.c_str(), cache.num_entries(), cache.num_records(),
                static_cast<unsigned long long>(cache_fingerprint(cache)));
    if (task_spec.empty()) return 0;
  }

  std::size_t slash = task_spec.find('/');
  if (slash == std::string::npos || slash == 0 ||
      slash + 1 >= task_spec.size()) {
    std::fprintf(stderr, "--task wants NETWORK/SUBGRAPH, got \"%s\"\n",
                 task_spec.c_str());
    return 2;
  }
  std::string net_name = task_spec.substr(0, slash);
  std::string sub_name = task_spec.substr(slash + 1);
  TaskResolver resolver = make_builtin_resolver();
  const Subgraph* graph = resolver(net_name, sub_name);
  if (graph == nullptr) {
    std::fprintf(stderr, "unknown task %s/%s (builtin workloads only)\n",
                 net_name.c_str(), sub_name.c_str());
    return 1;
  }

  if (repeat < 1) repeat = 1;
  ServeResult result;
  std::vector<double> micros;
  micros.reserve(static_cast<std::size_t>(repeat));
  for (int r = 0; r < repeat; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    result = cache.serve(net_name, *graph, hw);
    auto t1 = std::chrono::steady_clock::now();
    micros.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }

  std::printf("query: %s/%s on %s (fp %llu)\n", net_name.c_str(),
              sub_name.c_str(), hw.name.c_str(),
              static_cast<unsigned long long>(hw.fingerprint()));
  std::printf("tier: %s\n", serve_tier_name(result.tier));
  if (result.tier == ServeTier::kMiss) {
    std::printf("no knowledge for this task; run a tuning session\n");
  } else {
    std::printf("schedule fingerprint: %llu\n",
                static_cast<unsigned long long>(result.schedule.fingerprint()));
    if (result.tier != ServeTier::kL3) {
      std::printf("score: %s\n", json::format_double(result.score).c_str());
      std::printf("est_time_ms: %s\n",
                  json::format_double(result.est_time_ms).c_str());
      std::printf("record: %s\n", record_to_json(result.record).c_str());
    }
    std::printf("schedule:\n%s", result.schedule.to_string().c_str());
  }
  std::sort(micros.begin(), micros.end());
  std::printf("lookup: median %.1f us over %d repeat(s)\n",
              micros[micros.size() / 2], repeat);

  if (tier_stats) {
    ServeStats s = cache.stats();
    std::printf(
        "tier stats: queries=%zu l1=%zu l2=%zu l3=%zu miss=%zu inserts=%zu "
        "duplicates=%zu evictions=%zu rejected=%zu refreshes=%zu "
        "invalidations=%zu\n",
        s.queries, s.l1_hits, s.l2_hits, s.l3_hits, s.misses, s.inserts,
        s.duplicates, s.evictions, s.rejected, s.refreshes, s.invalidations);
  }

  if (expect_best) {
    // The CI round-trip contract: the answer must be an L1 hit whose record
    // is byte-identical to the best record the logs hold for this triple.
    return check_expect_best(logs, net_name, sub_name, hw.fingerprint(),
                             serve_tier_name(result.tier),
                             record_to_json(result.record));
  }
  return 0;
}
