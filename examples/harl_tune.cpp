/// harl_tune — command-line auto-tuner over the library's workload zoo.
///
///   example_harl_tune [--workload NAME] [--policy NAME] [--trials N]
///                     [--hw cpu|gpu] [--batch N] [--seed S] [--paper]
///                     [--loop-nest]
///
/// Workloads: any network name (bert, resnet50, mobilenet_v2), any Table 6
/// suite name (GEMM-S ... T2D; tunes the suite's headline config), or
/// "gemm:MxKxN" for an ad-hoc matmul.
///
///   example_harl_tune --workload gemm:1024x1024x1024 --trials 400
///   example_harl_tune --workload bert --policy ansor --trials 800
///   example_harl_tune --workload C2D --hw gpu --loop-nest

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "core/harl.hpp"
#include "sched/loop_nest.hpp"

using namespace harl;

namespace {

std::optional<PolicyKind> parse_policy(const std::string& name) {
  if (name == "harl") return PolicyKind::kHarl;
  if (name == "hierarchical-rl") return PolicyKind::kHarlFixedLength;
  if (name == "ansor") return PolicyKind::kAnsor;
  if (name == "flextensor") return PolicyKind::kFlextensor;
  if (name == "autotvm") return PolicyKind::kAutoTvmSa;
  if (name == "random") return PolicyKind::kRandom;
  return std::nullopt;
}

std::optional<Network> parse_workload(const std::string& name, std::int64_t batch) {
  for (const std::string& net : network_names()) {
    if (name == net) return make_network(name, batch);
  }
  for (const std::string& suite : table6_suite_names()) {
    if (name == suite) {
      Network net;
      net.name = suite;
      net.subgraphs.push_back(table6_suite(suite, batch)[0].graph);
      return net;
    }
  }
  if (name.rfind("gemm:", 0) == 0) {
    std::int64_t m = 0, k = 0, n = 0;
    if (std::sscanf(name.c_str() + 5, "%ldx%ldx%ld", &m, &k, &n) == 3 && m > 0 &&
        k > 0 && n > 0) {
      Network net;
      net.name = name;
      net.subgraphs.push_back(make_gemm(m, k, n, batch));
      return net;
    }
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "gemm:512x512x512";
  std::string policy_name = "harl";
  std::string hw_name = "cpu";
  std::int64_t trials = 300;
  std::int64_t batch = 1;
  std::uint64_t seed = 42;
  bool paper = false;
  bool show_loop_nest = false;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--workload")) workload = next("--workload");
    else if (!std::strcmp(argv[i], "--policy")) policy_name = next("--policy");
    else if (!std::strcmp(argv[i], "--trials")) trials = std::atoll(next("--trials"));
    else if (!std::strcmp(argv[i], "--hw")) hw_name = next("--hw");
    else if (!std::strcmp(argv[i], "--batch")) batch = std::atoll(next("--batch"));
    else if (!std::strcmp(argv[i], "--seed")) seed = std::strtoull(next("--seed"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--paper")) paper = true;
    else if (!std::strcmp(argv[i], "--loop-nest")) show_loop_nest = true;
    else {
      std::printf(
          "usage: %s [--workload NAME] [--policy harl|hierarchical-rl|ansor|"
          "flextensor|autotvm|random]\n"
          "          [--trials N] [--hw cpu|gpu] [--batch N] [--seed S] "
          "[--paper] [--loop-nest]\n",
          argv[0]);
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }

  std::optional<PolicyKind> kind = parse_policy(policy_name);
  if (!kind) {
    std::fprintf(stderr, "unknown policy '%s'\n", policy_name.c_str());
    return 2;
  }
  std::optional<Network> net = parse_workload(workload, batch);
  if (!net) {
    std::fprintf(stderr, "unknown workload '%s' (networks: bert resnet50 "
                         "mobilenet_v2; suites: GEMM-S..T2D; or gemm:MxKxN)\n",
                 workload.c_str());
    return 2;
  }
  HardwareConfig hw =
      hw_name == "gpu" ? HardwareConfig::rtx3090() : HardwareConfig::xeon_6226r();
  SearchOptions opts = paper ? paper_options(*kind, seed) : quick_options(*kind, seed);

  std::printf("tuning %s on %s with %s, %lld trials...\n\n", net->name.c_str(),
              hw.name.c_str(), policy_kind_name(*kind), (long long)trials);
  TuningSession session(std::move(*net), hw, opts);
  session.run(trials);

  std::printf("%s", render_session_report(session).c_str());
  if (show_loop_nest) {
    for (int i = 0; i < session.scheduler().num_tasks(); ++i) {
      const TaskState& t = session.scheduler().task(i);
      if (t.has_best()) {
        std::printf("\n%s",
                    render_loop_nest(t.best_schedule(), hw.unroll_depths).c_str());
      }
    }
  }
  return 0;
}
