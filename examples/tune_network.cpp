/// End-to-end network tuning: optimize BERT on the CPU model with HARL and
/// with the Ansor baseline, then print a Table-4-style per-subgraph
/// comparison (execution-time contribution and speedup).
///
///   ./build/examples/example_tune_network [trials]   (default 600)

#include <cstdio>
#include <cstdlib>

#include "core/harl.hpp"

int main(int argc, char** argv) {
  using namespace harl;
  std::int64_t trials = argc > 1 ? std::atoll(argv[1]) : 600;

  HardwareConfig cpu = HardwareConfig::xeon_6226r();
  std::printf("Tuning BERT (batch 1) with %lld trials per scheduler...\n\n",
              static_cast<long long>(trials));

  TuningSession ansor(make_bert(1), cpu, quick_options(PolicyKind::kAnsor, 42));
  ansor.run(trials);
  TuningSession harl(make_bert(1), cpu, quick_options(PolicyKind::kHarl, 42));
  harl.run(trials);

  const Network& net = harl.network();
  Table table("BERT per-subgraph results");
  table.set_header({"subgraph", "weight", "HARL ms", "Ansor ms", "speedup",
                    "HARL trials"});
  auto alloc = harl.scheduler().task_allocations();
  for (int i = 0; i < harl.scheduler().num_tasks(); ++i) {
    std::size_t k = static_cast<std::size_t>(i);
    table.add(net.subgraphs[k].name(), net.subgraphs[k].weight(),
              Table::fmt(harl.task_best_ms(i), 4), Table::fmt(ansor.task_best_ms(i), 4),
              Table::fmt(ansor.task_best_ms(i) / harl.task_best_ms(i), 2) + "x",
              alloc[k]);
  }
  table.print();

  std::printf("\nestimated end-to-end latency (sum w_n * g_n):\n");
  std::printf("  HARL : %.3f ms\n", harl.latency_ms());
  std::printf("  Ansor: %.3f ms  (HARL speedup: %.2fx)\n", ansor.latency_ms(),
              ansor.latency_ms() / harl.latency_ms());

  std::printf("\n%s", render_session_report(harl).c_str());
  return 0;
}
