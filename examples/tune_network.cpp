/// End-to-end network tuning with durable record logs.
///
/// Default mode reproduces the Table-4-style HARL-vs-Ansor comparison on
/// BERT.  With `--policy=` it tunes one named policy (any name registered in
/// the PolicyRegistry), and with `--log=` the run becomes durable: every
/// measured record is appended to a JSONL log, and re-running the same
/// command resumes from the log bit-identically instead of starting over.
///
///   ./build/tune_network [trials]
///       [--trials=N] [--network=bert|resnet50|mobilenet_v2] [--seed=N]
///       [--policy=NAME]         tune one policy instead of the comparison
///       [--log=PATH]            append records; resume when the log exists
///       [--model=PATH]          pretrained experience model (harl_harvest)
///       [--value-model=PATH]    partial-schedule value model (harl_harvest
///                               value): policies beam-prune their expansions
///                               with it and records stamp its fingerprint
///       [--beam-width=N]        tracks/population kept after value pruning
///                               (default 16; needs --value-model)
///       [--sample-clusters=N]   adaptive-sampling trial filter: measure only
///                               N cluster representatives per round (0 = off)
///       [--stop-at-ms=X]        stop at the first round boundary whose
///                               estimated latency is <= X ms (for
///                               trials-to-target comparisons)
///       [--verify-resume]       re-simulate a sample of replayed trials and
///                               fail (exit 4) if the log diverges from the
///                               current simulator instead of silently forking
///       [--async-callbacks]     run callbacks (logger, refresher) on an
///                               AsyncCallbackBus dispatcher thread instead of
///                               the tuning thread; output stays bit-identical
///       [--refresh-period=N]    in-run experience refresh: fold finished
///                               rounds into an ExperienceStore and refit +
///                               republish the model every N rounds
///       [--refresh-out=PATH]    refreshed-model publish target (default:
///                               <log>.model.json, else refresh.model.json)
///       [--stop-after-rounds=N] simulate a crash: _Exit(3) after N rounds
///       [--inject-faults=SPEC]  deterministic measurement faults; SPEC is
///                               `none` or comma-separated terms
///                               transient=P|timeout=P|garbage=P|crash=N,
///                               optionally `:SEED` (e.g.
///                               --inject-faults=transient=0.1,crash=120:77).
///                               crash=N _Exit(3)s when trial N is assigned;
///                               drop the crash= term to resume, exactly like
///                               --stop-after-rounds
///       [--dump-rounds=PATH]    bit-exact round log (hexfloat) for diffing
///       [--help]                print this usage and exit
///
/// Crash-resume walkthrough (the CI determinism gate):
///   ./build/tune_network --policy=HARL --log=run.jsonl --stop-after-rounds=6
///   ./build/tune_network --policy=HARL --log=run.jsonl   # resumes, finishes
/// The resumed round log is byte-identical to an uninterrupted run's.
/// The same walkthrough holds under --inject-faults with the same SPEC:SEED:
/// failures land on the same trials, so the faulty resume is bit-identical
/// too (the chaos gate in CI proves both).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "core/harl.hpp"

namespace {

using namespace harl;

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: tune_network [trials]\n"
      "  [--trials=N] [--network=bert|resnet50|mobilenet_v2] [--seed=N]\n"
      "  [--policy=NAME]         tune one registered policy (durable mode)\n"
      "  [--log=PATH]            append records; resume when the log exists\n"
      "  [--model=PATH]          pretrained experience model (harl_harvest)\n"
      "  [--value-model=PATH]    partial-schedule value model (harl_harvest value)\n"
      "  [--beam-width=N]        tracks kept after value pruning (default 16)\n"
      "  [--sample-clusters=N]   measure only N cluster representatives (0 = off)\n"
      "  [--stop-at-ms=X]        stop once estimated latency <= X ms\n"
      "  [--verify-resume]       re-simulate replayed trials; exit 4 on drift\n"
      "  [--async-callbacks]     callbacks on a dispatcher thread (bit-identical)\n"
      "  [--refresh-period=N]    refit + republish experience model every N rounds\n"
      "  [--refresh-out=PATH]    refreshed-model publish target\n"
      "  [--stop-after-rounds=N] simulate a crash: _Exit(3) after N rounds\n"
      "  [--inject-faults=SPEC]  deterministic faults: none or\n"
      "                          transient=P,timeout=P,garbage=P,crash=N[:SEED]\n"
      "  [--dump-rounds=PATH]    bit-exact round log (hexfloat) for diffing\n"
      "  [--help]                print this usage and exit\n");
}

/// Matches "--name=value" and returns the value part.
bool flag_value(const char* arg, const char* name, const char** value) {
  std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

/// Simulated crash for the resume gate: exit without unwinding as soon as N
/// rounds completed.  Registered after the RecordLogger, so the final
/// round's records are already flushed when this fires.
struct CrashAfterRounds : TuningCallback {
  explicit CrashAfterRounds(int rounds) : remaining(rounds) {}
  int remaining;
  void on_round(const TaskScheduler&, const RoundEvent&) override {
    if (--remaining <= 0) std::_Exit(3);
  }
};

/// Early-stop for trials-to-target comparisons (the CI value-guide gate):
/// request a stop at the first round boundary whose estimated latency
/// reaches the target.  request_stop only affects *when* the run exits — the
/// rounds that did run are a prefix of the full run, so determinism holds.
struct StopAtLatency : TuningCallback {
  TuningSession* session = nullptr;
  double target_ms = 0;
  void on_round(const TaskScheduler&, const RoundEvent& e) override {
    if (e.net_latency_ms <= target_ms) session->request_stop();
  }
};

void dump_round_log(const TaskScheduler& sched, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  for (const TaskScheduler::RoundLog& r : sched.round_log()) {
    // %a prints the exact bits of the latency, so diffing two dumps is a
    // bit-identity check, not an approximate one.
    std::fprintf(f, "%d %lld %a\n", r.task, static_cast<long long>(r.trials_after),
                 r.net_latency_ms);
  }
  std::fclose(f);
}

void print_task_table(const TuningSession& session, const char* title) {
  const Network& net = session.network();
  Table table(title);
  table.set_header({"subgraph", "weight", "best ms", "trials"});
  auto alloc = session.scheduler().task_allocations();
  for (int i = 0; i < session.scheduler().num_tasks(); ++i) {
    std::size_t k = static_cast<std::size_t>(i);
    table.add(net.subgraphs[k].name(), net.subgraphs[k].weight(),
              Table::fmt(session.task_best_ms(i), 4), alloc[k]);
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace harl;
  std::int64_t trials = 600;
  std::uint64_t seed = 42;
  std::string network_name = "bert";
  std::string policy_name;
  std::string log_path;
  std::string dump_path;
  std::string model_path;
  std::string value_model_path;
  std::string refresh_out;
  std::string fault_spec_text;
  bool verify_resume_flag = false;
  bool async_callbacks = false;
  int refresh_period = 0;
  int stop_after_rounds = 0;
  int beam_width = 16;
  int sample_clusters = 0;
  double stop_at_ms = 0;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (flag_value(argv[i], "--trials", &v)) {
      trials = std::atoll(v);
    } else if (flag_value(argv[i], "--seed", &v)) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (flag_value(argv[i], "--network", &v)) {
      network_name = v;
    } else if (flag_value(argv[i], "--policy", &v)) {
      policy_name = v;
    } else if (flag_value(argv[i], "--log", &v)) {
      log_path = v;
    } else if (flag_value(argv[i], "--model", &v)) {
      model_path = v;
    } else if (flag_value(argv[i], "--value-model", &v)) {
      value_model_path = v;
    } else if (flag_value(argv[i], "--beam-width", &v)) {
      beam_width = std::atoi(v);
    } else if (flag_value(argv[i], "--sample-clusters", &v)) {
      sample_clusters = std::atoi(v);
    } else if (flag_value(argv[i], "--stop-at-ms", &v)) {
      stop_at_ms = std::atof(v);
    } else if (std::strcmp(argv[i], "--verify-resume") == 0) {
      verify_resume_flag = true;
    } else if (std::strcmp(argv[i], "--async-callbacks") == 0) {
      async_callbacks = true;
    } else if (flag_value(argv[i], "--refresh-period", &v)) {
      refresh_period = std::atoi(v);
    } else if (flag_value(argv[i], "--refresh-out", &v)) {
      refresh_out = v;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      print_usage(stdout);
      return 0;
    } else if (flag_value(argv[i], "--dump-rounds", &v)) {
      dump_path = v;
    } else if (flag_value(argv[i], "--stop-after-rounds", &v)) {
      stop_after_rounds = std::atoi(v);
    } else if (flag_value(argv[i], "--inject-faults", &v)) {
      fault_spec_text = v;
    } else if (argv[i][0] != '-') {
      trials = std::atoll(argv[i]);  // legacy positional [trials]
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      print_usage(stderr);
      return 1;
    }
  }

  FaultSpec fault_spec;
  if (!fault_spec_text.empty()) {
    std::string error;
    if (!FaultSpec::parse(fault_spec_text, &fault_spec, &error)) {
      std::fprintf(stderr, "bad --inject-faults spec \"%s\": %s\n",
                   fault_spec_text.c_str(), error.c_str());
      return 1;
    }
  }

  HardwareConfig cpu = HardwareConfig::xeon_6226r();
  Network net;
  try {
    net = make_network(network_name, 1);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  if (fault_spec.any() && policy_name.empty()) {
    std::fprintf(stderr, "--inject-faults requires --policy=NAME mode\n");
    return 1;
  }

  if (!policy_name.empty()) {
    // ---- single-policy mode: durable, resumable ------------------------
    if (!PolicyRegistry::instance().contains(policy_name)) {
      std::fprintf(stderr, "unknown policy \"%s\"; registered policies:\n",
                   policy_name.c_str());
      for (const std::string& n : PolicyRegistry::instance().names()) {
        std::fprintf(stderr, "  %s\n", n.c_str());
      }
      return 1;
    }
    SearchOptions opts = quick_options(PolicyKind::kHarl, seed);
    opts.policy_name = policy_name;
    if (auto kind = policy_kind_from_name(policy_name)) opts.policy = *kind;
    opts.experience_model = model_path;
    opts.async_callbacks.enabled = async_callbacks;
    if (!value_model_path.empty() || sample_clusters > 0) {
      opts.value_guide.enabled = true;
      opts.value_guide.model_path = value_model_path;
      opts.value_guide.beam_width = beam_width;
      opts.value_guide.sample_clusters = sample_clusters;
    }

    std::unique_ptr<ExperienceRefresher> refresher;
    if (refresh_period > 0) {
      RefreshOptions ropts;
      ropts.period_rounds = refresh_period;
      ropts.publish_path = !refresh_out.empty() ? refresh_out
                           : !log_path.empty() ? log_path + ".model.json"
                                               : "refresh.model.json";
      refresher = std::make_unique<ExperienceRefresher>(cpu, ropts);
      if (!model_path.empty()) {
        // Load once, share between the session (its fixed prior) and the
        // refresher (the base the refreshed model continues from).  Same
        // validation as the experience_model path: a wrong feature width
        // would index past the end of every extracted row.
        auto base = std::make_shared<Gbdt>();
        std::string error;
        if (!load_gbdt(model_path, base.get(), &error)) {
          std::fprintf(stderr, "cannot load --model %s: %s\n",
                       model_path.c_str(), error.c_str());
          return 1;
        }
        if (base->num_features() != FeatureExtractor::kNumFeatures) {
          std::fprintf(stderr,
                       "--model %s has %d features (extractor has %d); "
                       "ignored, starting cold\n",
                       model_path.c_str(), base->num_features(),
                       FeatureExtractor::kNumFeatures);
        } else {
          opts.experience_model.clear();
          opts.cost_model.pretrained = base;
          refresher->set_base_model(std::move(base));
        }
      }
    }

    TuningSession session(net, cpu, opts);
    // The injector is installed only when the spec injects something, so a
    // `--inject-faults=none:SEED` invocation runs the exact fault-free code
    // path and its outputs stay byte-identical to a run without the flag.
    std::unique_ptr<FaultInjector> injector;
    if (fault_spec.any()) {
      injector = std::make_unique<FaultInjector>(fault_spec);
      session.measurer().set_fault_injector(injector.get());
      if (fault_spec.crash_at_trial >= 0) {
        // Hard crash, no unwinding: the log keeps only fully committed
        // rounds, and the next invocation (same spec minus crash=) resumes.
        session.measurer().set_crash_hook([](std::int64_t) { std::_Exit(3); });
      }
    }
    RecordLogger logger;
    CrashAfterRounds crasher(stop_after_rounds);
    if (!log_path.empty()) {
      // Self-heal first: a corrupt mid-file line would otherwise end the
      // replay early and fork the run.  The original is kept as evidence.
      SalvageResult sv = salvage_log(log_path);
      if (sv.salvaged) {
        std::fprintf(stderr,
                     "%s: salvaged: kept %zu lines, dropped %zu corrupt "
                     "(original preserved at %s)\n",
                     log_path.c_str(), sv.lines_kept, sv.lines_dropped,
                     sv.quarantine_path.c_str());
      } else if (!sv.error.empty()) {
        std::fprintf(stderr, "%s: salvage failed: %s\n", log_path.c_str(),
                     sv.error.c_str());
      }
      std::vector<RecordReadError> read_errors;
      std::vector<TuningRecord> records = read_records(log_path, &read_errors);
      if (verify_resume_flag) {
        VerifyResumeReport report = verify_resume(session, records);
        if (!records.empty() && report.matched == 0) {
          // A verification that matched nothing never ran; saying "ok" here
          // would bless resuming a foreign log.
          std::fprintf(stderr,
                       "verify-resume FAILED: %zu records in %s, none match "
                       "this run's identity (network/hardware/policy/seed/"
                       "experience model)\n",
                       records.size(), log_path.c_str());
          return 4;
        }
        if (!report.ok()) {
          std::fprintf(stderr,
                       "verify-resume FAILED: %zu of %zu checked trials "
                       "diverge from the current simulator\n",
                       report.mismatches.size(), report.checked);
          std::fprintf(stderr, "  %8s  %-24s  %16s  %16s\n", "trial", "task",
                       "logged ms", "recomputed ms");
          for (const VerifyResumeMismatch& m : report.mismatches) {
            if (m.error.empty()) {
              std::fprintf(stderr, "  %8lld  %-24s  %16.9g  %16.9g\n",
                           static_cast<long long>(m.trial_index),
                           m.task.c_str(), m.logged_ms, m.recomputed_ms);
            } else {
              std::fprintf(stderr, "  %8lld  %-24s  %16.9g  [%s]\n",
                           static_cast<long long>(m.trial_index),
                           m.task.c_str(), m.logged_ms, m.error.c_str());
            }
          }
          std::fprintf(stderr,
                       "the log was produced by a different simulator/hardware "
                       "model; resuming would fork the run\n");
          return 4;
        }
        std::printf("verify-resume: %zu of %zu replayable trials re-simulated, "
                    "all bit-identical\n",
                    report.checked, report.matched);
      }
      ResumeStats st = resume_session(session, records);
      if (!logger.open(log_path, /*append=*/true)) {
        std::fprintf(stderr, "cannot open log %s\n", log_path.c_str());
        return 1;
      }
      logger.set_skip(st.records_matched);
      session.add_callback(&logger);
      if (st.records_matched > 0) {
        std::printf("resuming from %s: %zu records, %lld trials to replay\n",
                    log_path.c_str(), st.records_matched,
                    static_cast<long long>(st.replay_trials));
      }
      for (const RecordReadError& e : read_errors) {
        std::fprintf(stderr, "%s:%zu: skipped: %s\n", log_path.c_str(),
                     e.line_number, e.message.c_str());
      }
    }
    if (refresher != nullptr) session.add_callback(refresher.get());
    if (stop_after_rounds > 0) session.add_callback(&crasher);
    StopAtLatency stopper;
    if (stop_at_ms > 0) {
      stopper.session = &session;
      stopper.target_ms = stop_at_ms;
      session.add_callback(&stopper);
    }

    std::printf("Tuning %s with policy %s, %lld trials (seed %llu)...\n\n",
                net.name.c_str(), policy_name.c_str(),
                static_cast<long long>(trials),
                static_cast<unsigned long long>(seed));
    session.run(trials);

    print_task_table(session, "per-subgraph results");
    std::printf("\nestimated end-to-end latency: %.4f ms\n", session.latency_ms());
    std::printf("trials used: %lld (replayed from log: %lld)\n",
                static_cast<long long>(session.measurer().trials_used()),
                static_cast<long long>(session.measurer().replayed()));
    if (opts.value_guide.enabled) {
      std::int64_t credited = 0;
      for (int i = 0; i < session.scheduler().num_tasks(); ++i) {
        credited += session.scheduler().task(i).credited_candidates();
      }
      std::printf("value guide: model fingerprint %llu, candidates credited "
                  "without measurement: %lld\n",
                  static_cast<unsigned long long>(
                      session.scheduler().value_fingerprint()),
                  static_cast<long long>(credited));
    }
    const Measurer& m = session.measurer();
    if (injector != nullptr || m.failed() > 0) {
      std::printf("failed measurements: %lld (%lld retries, %lld recovered, "
                  "%zu schedules quarantined, %lld quarantine hits)\n",
                  static_cast<long long>(m.failed()),
                  static_cast<long long>(m.retries()),
                  static_cast<long long>(m.recovered()),
                  m.quarantined_schedules(),
                  static_cast<long long>(m.quarantine_hits()));
    }
    if (injector != nullptr) {
      std::printf("injected faults (%s): %llu transient, %llu timeout, "
                  "%llu garbage\n",
                  injector->spec().to_string().c_str(),
                  static_cast<unsigned long long>(injector->injected_transient()),
                  static_cast<unsigned long long>(injector->injected_timeout()),
                  static_cast<unsigned long long>(injector->injected_garbage()));
    }
    if (!log_path.empty()) {
      std::printf("record log: %s (+%zu records this run)\n", log_path.c_str(),
                  logger.written());
    }
    if (const AsyncCallbackBus* bus = session.scheduler().async_bus()) {
      std::printf("async callbacks: %llu events dispatched (%llu dropped, "
                  "%llu rejected, %llu consumer errors)\n",
                  static_cast<unsigned long long>(bus->delivered()),
                  static_cast<unsigned long long>(bus->dropped()),
                  static_cast<unsigned long long>(bus->rejected()),
                  static_cast<unsigned long long>(bus->consumer_errors()));
    }
    if (refresher != nullptr) {
      // Fold the tail in: the final publish covers the whole run, so the
      // next invocation (or a sibling) starts from everything measured here.
      refresher->refresh_now();
      bool published =
          refresher->refreshes() > 0 && refresher->publish_errors() == 0;
      std::printf("experience refresh: %zu refits over %zu records; "
                  "model %s (fingerprint %llu)\n",
                  refresher->refreshes(), refresher->records_folded(),
                  published ? "published" : "not published",
                  static_cast<unsigned long long>(
                      refresher->current_fingerprint()));
      if (refresher->publish_errors() > 0) {
        std::fprintf(stderr, "experience refresh: %zu publish failure(s); "
                     "the published file is missing or stale\n",
                     refresher->publish_errors());
      }
    }
    if (!dump_path.empty()) dump_round_log(session.scheduler(), dump_path.c_str());
    return 0;
  }

  // ---- comparison mode (legacy default): HARL vs Ansor on the network ----
  std::printf("Tuning %s (batch 1) with %lld trials per scheduler...\n\n",
              net.name.c_str(), static_cast<long long>(trials));

  TuningSession ansor(net, cpu, quick_options(PolicyKind::kAnsor, seed));
  ansor.run(trials);
  TuningSession harl(net, cpu, quick_options(PolicyKind::kHarl, seed));
  harl.run(trials);

  Table table(net.name + " per-subgraph results");
  table.set_header({"subgraph", "weight", "HARL ms", "Ansor ms", "speedup",
                    "HARL trials"});
  auto alloc = harl.scheduler().task_allocations();
  for (int i = 0; i < harl.scheduler().num_tasks(); ++i) {
    std::size_t k = static_cast<std::size_t>(i);
    table.add(net.subgraphs[k].name(), net.subgraphs[k].weight(),
              Table::fmt(harl.task_best_ms(i), 4), Table::fmt(ansor.task_best_ms(i), 4),
              Table::fmt(ansor.task_best_ms(i) / harl.task_best_ms(i), 2) + "x",
              alloc[k]);
  }
  table.print();

  std::printf("\nestimated end-to-end latency (sum w_n * g_n):\n");
  std::printf("  HARL : %.3f ms\n", harl.latency_ms());
  std::printf("  Ansor: %.3f ms  (HARL speedup: %.2fx)\n", ansor.latency_ms(),
              ansor.latency_ms() / harl.latency_ms());

  std::printf("\n%s", render_session_report(harl).c_str());
  if (!dump_path.empty()) dump_round_log(harl.scheduler(), dump_path.c_str());
  return 0;
}
