/// Quickstart: tune a single 512x512x512 GEMM with HARL in ~30 lines.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/example_quickstart

#include <cstdio>

#include "core/harl.hpp"
#include "sched/loop_nest.hpp"

int main() {
  using namespace harl;

  // 1. Describe the workload: one GEMM subgraph (C = A x B).
  Subgraph gemm = make_gemm(/*m=*/512, /*k=*/512, /*n=*/512);

  // 2. Pick a target: the Xeon-6226R-like CPU model the paper evaluates on.
  HardwareConfig cpu = HardwareConfig::xeon_6226r();

  // 3. Tune with HARL (hierarchical RL + adaptive stopping, Table 5 defaults
  //    at laptop scale; use paper_options(...) for the full-size settings).
  TuningSession session(gemm, cpu, quick_options(PolicyKind::kHarl));
  session.run(/*trials=*/300);

  // 4. Inspect the result.
  const TaskState& task = session.scheduler().task(0);
  std::printf("best simulated time : %.4f ms\n", task.best_time_ms());
  std::printf("measurement trials  : %lld\n",
              static_cast<long long>(session.measurer().trials_used()));
  std::printf("search wall time    : %.2f s\n", session.wall_seconds());
  std::printf("\nbest schedule:\n%s", task.best_schedule().to_string().c_str());
  std::printf("\nas a loop nest:\n%s",
              render_loop_nest(task.best_schedule(), cpu.unroll_depths).c_str());
  return 0;
}
