/// Compare all five search strategies on one operator (a 14x14x256x256
/// 3x3 convolution — the C2D workload class of Table 6) under the same trial
/// budget, printing a convergence table: Table 1 of the paper, in numbers.
///
///   ./build/examples/example_compare_searchers [trials]   (default 300)

#include <cstdio>
#include <cstdlib>

#include "core/harl.hpp"

int main(int argc, char** argv) {
  using namespace harl;
  std::int64_t trials = argc > 1 ? std::atoll(argv[1]) : 300;

  Subgraph conv = make_conv2d(1, 14, 14, 256, 256, 3, 1, 1);
  HardwareConfig cpu = HardwareConfig::xeon_6226r();
  std::printf("C2D(14,14,256,256,k3,s1,p1), %lld trials per searcher\n\n",
              static_cast<long long>(trials));

  std::vector<PolicyKind> kinds = {PolicyKind::kRandom, PolicyKind::kAutoTvmSa,
                                   PolicyKind::kFlextensor, PolicyKind::kAnsor,
                                   PolicyKind::kHarlFixedLength, PolicyKind::kHarl};

  Table table("search strategy comparison");
  std::vector<std::string> header = {"policy"};
  for (int frac = 1; frac <= 4; ++frac) {
    header.push_back("best@" + std::to_string(trials * frac / 4));
  }
  header.push_back("wall s");
  table.set_header(header);

  double overall_best = 1e300;
  std::vector<std::vector<std::string>> rows;
  for (PolicyKind kind : kinds) {
    TuningSession session(conv, cpu, quick_options(kind, 99));
    session.run(trials);
    const auto& curve = session.scheduler().task(0).curve();
    std::vector<std::string> row = {policy_kind_name(kind)};
    for (int frac = 1; frac <= 4; ++frac) {
      row.push_back(Table::fmt(best_at(curve, trials * frac / 4), 4));
    }
    row.push_back(Table::fmt(session.wall_seconds(), 1));
    overall_best = std::min(overall_best, session.task_best_ms(0));
    rows.push_back(std::move(row));
  }
  for (auto& r : rows) table.add_row(std::move(r));
  table.print();
  std::printf("\nbest schedule found across all searchers: %.4f ms\n", overall_best);
  std::printf("(times are simulated milliseconds on the Xeon-6226R model)\n");
  return 0;
}
