/// Compare search strategies on one operator (a 14x14x256x256 3x3
/// convolution — the C2D workload class of Table 6) under the same trial
/// budget, printing a convergence table: Table 1 of the paper, in numbers.
///
///   ./build/compare_searchers [trials] [--trials=N]
///       [--policy=NAME[,NAME...]]   subset of searchers, by registry name
///                                   (default: all six built-ins)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/harl.hpp"

int main(int argc, char** argv) {
  using namespace harl;
  std::int64_t trials = 300;
  std::vector<PolicyKind> kinds = {PolicyKind::kRandom, PolicyKind::kAutoTvmSa,
                                   PolicyKind::kFlextensor, PolicyKind::kAnsor,
                                   PolicyKind::kHarlFixedLength, PolicyKind::kHarl};

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--policy=", 9) == 0) {
      // Comma-separated policy names, resolved through the name <-> kind
      // round trip (policy_kind_from_name is the inverse of
      // policy_kind_name, case-insensitive).
      kinds.clear();
      std::string list = arg + 9;
      std::size_t start = 0;
      while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        std::string name = list.substr(
            start, comma == std::string::npos ? std::string::npos : comma - start);
        if (!name.empty()) {
          if (auto kind = policy_kind_from_name(name)) {
            kinds.push_back(*kind);
          } else {
            std::fprintf(stderr, "unknown policy \"%s\"; built-in names:\n",
                         name.c_str());
            for (const std::string& n : PolicyRegistry::instance().names()) {
              std::fprintf(stderr, "  %s\n", n.c_str());
            }
            return 1;
          }
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (kinds.empty()) {
        std::fprintf(stderr, "--policy= needs at least one name\n");
        return 1;
      }
    } else if (std::strncmp(arg, "--trials=", 9) == 0) {
      trials = std::atoll(arg + 9);
    } else if (arg[0] != '-') {
      trials = std::atoll(arg);  // legacy positional [trials]
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg);
      return 1;
    }
  }

  Subgraph conv = make_conv2d(1, 14, 14, 256, 256, 3, 1, 1);
  HardwareConfig cpu = HardwareConfig::xeon_6226r();
  std::printf("C2D(14,14,256,256,k3,s1,p1), %lld trials per searcher\n\n",
              static_cast<long long>(trials));

  Table table("search strategy comparison");
  std::vector<std::string> header = {"policy"};
  for (int frac = 1; frac <= 4; ++frac) {
    header.push_back("best@" + std::to_string(trials * frac / 4));
  }
  header.push_back("wall s");
  table.set_header(header);

  double overall_best = 1e300;
  std::vector<std::vector<std::string>> rows;
  for (PolicyKind kind : kinds) {
    TuningSession session(conv, cpu, quick_options(kind, 99));
    session.run(trials);
    const auto& curve = session.scheduler().task(0).curve();
    std::vector<std::string> row = {policy_kind_name(kind)};
    for (int frac = 1; frac <= 4; ++frac) {
      row.push_back(Table::fmt(best_at(curve, trials * frac / 4), 4));
    }
    row.push_back(Table::fmt(session.wall_seconds(), 1));
    overall_best = std::min(overall_best, session.task_best_ms(0));
    rows.push_back(std::move(row));
  }
  for (auto& r : rows) table.add_row(std::move(r));
  table.print();
  std::printf("\nbest schedule found across all searchers: %.4f ms\n", overall_best);
  std::printf("(times are simulated milliseconds on the Xeon-6226R model)\n");
  return 0;
}
