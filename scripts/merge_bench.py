#!/usr/bin/env python3
"""Merge BENCH_*.json outputs into a single BENCH_summary.json.

Every bench binary in this repo emits one flat-or-nested JSON object named
BENCH_<name>.json next to where it ran.  CI runs them all and used to upload
each file as its own artifact; this script collects every BENCH_*.json found
under a directory (default: the current directory, non-recursive) into one
summary object keyed by bench name, so the whole run ships as a single
artifact and a downstream diff only has to fetch one file.

The summary is deterministic: benches are keyed and emitted in sorted order,
and each payload is embedded verbatim (parsed and re-serialized with sorted
keys, no float reformatting thanks to Python round-tripping shortest-repr
doubles).

Usage:
  scripts/merge_bench.py [--dir=DIR] [--out=PATH]

  --dir=DIR    directory to scan for BENCH_*.json (default ".")
  --out=PATH   output path (default "<DIR>/BENCH_summary.json")

Exit codes: 0 on success (even when zero inputs are found -- an empty summary
is still written so the CI upload step never dangles), 2 on unreadable or
malformed input (a bench that wrote bad JSON should fail the merge loudly,
not vanish from the summary).
"""

import argparse
import json
import os
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--dir", default=".", help="directory to scan for BENCH_*.json")
    ap.add_argument("--out", default=None, help="output path (default <dir>/BENCH_summary.json)")
    args = ap.parse_args()

    out_path = args.out or os.path.join(args.dir, "BENCH_summary.json")
    out_abs = os.path.abspath(out_path)

    try:
        names = sorted(os.listdir(args.dir))
    except OSError as e:
        print(f"merge_bench: cannot list {args.dir}: {e}", file=sys.stderr)
        return 2

    benches = {}
    for name in names:
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        if name == "BENCH_summary.json":
            continue  # never ingest a previous merge (or our own output)
        path = os.path.join(args.dir, name)
        if os.path.abspath(path) == out_abs:
            continue
        key = name[len("BENCH_"):-len(".json")]
        try:
            with open(path, "r", encoding="utf-8") as f:
                benches[key] = json.load(f)
        except (OSError, ValueError) as e:
            print(f"merge_bench: bad input {path}: {e}", file=sys.stderr)
            return 2

    summary = {"num_benches": len(benches), "benches": benches}
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(summary, f, indent=1, sort_keys=True)
        f.write("\n")

    print(f"merge_bench: merged {len(benches)} bench file(s) into {out_path}")
    for key in sorted(benches):
        print(f"  - {key}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
