#!/usr/bin/env python3
"""Documentation consistency gate (CI docs job).

Two checks, both against the working tree (no build needed):

1. Intra-repo markdown links: every relative link target in a tracked
   ``*.md`` file must exist.  External links (http/https/mailto), pure
   anchors, and targets resolving outside the repo (GitHub web paths like
   the CI badge's ``../../actions/...``) are skipped.

2. CLI flag drift: for the documented binaries (``tune_network``,
   ``harl_harvest``) the set of flags the code parses (exact ``"--flag"``
   string literals), the flags its ``///`` doc-header usage block mentions,
   and the flags README.md documents must agree:

   - every parsed flag appears in the doc header (stale header),
   - every header flag is parsed (stale docs / removed flag),
   - every parsed flag appears in README.md (stale README).

3. Record-schema drift: every top-level field the record serializer writes
   (``obj.set("key", ...)`` in ``src/io/record.cpp``) must be documented in
   ``docs/RECORD_SCHEMA.md`` (as a backticked ``key``).  Per-stage keys use
   a different receiver and are covered by the ``stages`` row.

4. Protocol-schema drift: every wire field the harl_serve protocol
   serializer writes (``obj.set("key", ...)`` in
   ``src/server/protocol.cpp``) must be documented in ``docs/PROTOCOL.md``.

Exit 0 when clean, 1 with a per-violation report otherwise.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG = re.compile(r"--[a-z][a-z0-9-]*")
PARSED_FLAG = re.compile(r"\"(--[a-z][a-z0-9-]*)\"")

# Binaries whose usage documentation is under the drift contract.
CLI_SOURCES = [
    "examples/tune_network.cpp",
    "examples/harl_harvest.cpp",
    "examples/harl_query.cpp",
    "examples/harl_serve.cpp",
]

SKIP_DIRS = {".git", "build", "build-asan", ".claude"}


def markdown_files():
    out = []
    for root, dirs, files in os.walk(REPO):
        dirs[:] = [d for d in dirs if d not in SKIP_DIRS]
        for name in files:
            if name.endswith(".md"):
                out.append(os.path.join(root, name))
    return sorted(out)


def check_links(errors):
    for path in markdown_files():
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for match in MD_LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = os.path.normpath(os.path.join(os.path.dirname(path), target))
            if not resolved.startswith(REPO):
                continue  # GitHub web path (e.g. the CI badge); not a file
            if not os.path.exists(resolved):
                rel = os.path.relpath(path, REPO)
                errors.append(f"{rel}: broken link -> {target}")


def doc_header_flags(source_text):
    """Flags mentioned in the leading /// comment block of a source file."""
    flags = set()
    for line in source_text.splitlines():
        stripped = line.strip()
        if stripped.startswith("#") or stripped.startswith("int main"):
            break  # first include / code ends the header block
        if stripped.startswith("///"):
            flags.update(FLAG.findall(stripped))
    return flags


def check_flag_drift(errors):
    with open(os.path.join(REPO, "README.md"), encoding="utf-8") as f:
        readme_flags = set(FLAG.findall(f.read()))

    for rel in CLI_SOURCES:
        path = os.path.join(REPO, rel)
        if not os.path.exists(path):
            # A listed binary that vanished is drift, not a skip: the list
            # itself is documentation of the CLI surface.
            errors.append(f"{rel}: listed in CLI_SOURCES but does not exist")
            continue
        with open(path, encoding="utf-8") as f:
            text = f.read()
        parsed = set(PARSED_FLAG.findall(text))
        header = doc_header_flags(text)
        for flag in sorted(parsed - header):
            errors.append(f"{rel}: parsed flag {flag} missing from the /// usage header")
        for flag in sorted(header - parsed):
            errors.append(f"{rel}: usage header mentions {flag}, which the code does not parse")
        for flag in sorted(parsed - readme_flags):
            errors.append(f"README.md: flag {flag} of {rel} is undocumented")


RECORD_KEY = re.compile(r"obj\.set\(\"(\w+)\"")


def check_record_schema(errors):
    with open(os.path.join(REPO, "src", "io", "record.cpp"), encoding="utf-8") as f:
        keys = set(RECORD_KEY.findall(f.read()))
    with open(os.path.join(REPO, "docs", "RECORD_SCHEMA.md"), encoding="utf-8") as f:
        doc = f.read()
    for key in sorted(keys):
        if f"`{key}`" not in doc:
            errors.append(
                f"docs/RECORD_SCHEMA.md: record field `{key}` "
                "(src/io/record.cpp) is undocumented"
            )


def check_protocol_schema(errors):
    """Every wire field the protocol serializer writes must be documented.

    Same contract as the record schema: ``obj.set("key", ...)`` calls in
    ``src/server/protocol.cpp`` against backticked keys in
    ``docs/PROTOCOL.md``.
    """
    with open(
        os.path.join(REPO, "src", "server", "protocol.cpp"), encoding="utf-8"
    ) as f:
        keys = set(RECORD_KEY.findall(f.read()))
    with open(os.path.join(REPO, "docs", "PROTOCOL.md"), encoding="utf-8") as f:
        doc = f.read()
    for key in sorted(keys):
        if f"`{key}`" not in doc:
            errors.append(
                f"docs/PROTOCOL.md: wire field `{key}` "
                "(src/server/protocol.cpp) is undocumented"
            )


def main():
    errors = []
    check_links(errors)
    check_flag_drift(errors)
    check_record_schema(errors)
    check_protocol_schema(errors)
    if errors:
        print(f"check_docs: {len(errors)} problem(s)")
        for e in errors:
            print(f"  {e}")
        return 1
    print("check_docs: markdown links, CLI flag docs, and the record and "
          "protocol schemas are consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
